package dtd

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// ParseError is a DTD syntax error with its position in the input.
type ParseError struct {
	Line   int
	Column int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dtd: %d:%d: %s", e.Line, e.Column, e.Msg)
}

// Parse reads a sequence of markup declarations (a DTD file or the internal
// subset of a DOCTYPE) and returns the resulting DTD. Parameter entities
// declared in the input are substituted into subsequent declarations.
func Parse(r io.Reader) (*DTD, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dtd: reading input: %w", err)
	}
	return ParseString(string(data))
}

// ParseFile parses the DTD stored at path.
func ParseFile(path string) (*DTD, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseString(string(data))
}

// ParseString parses DTD declarations held in a string.
func ParseString(src string) (*DTD, error) {
	p := &dtdParser{src: src, line: 1, col: 1, paramEntities: make(map[string]string)}
	return p.parse()
}

// MustParse is ParseString for tests and examples with known-good input; it
// panics on error.
func MustParse(src string) *DTD {
	d, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseContentModel parses a single content-model expression such as
// "(b, (c | d)*, e?)" or "EMPTY".
func ParseContentModel(src string) (*Content, error) {
	p := &dtdParser{src: src, line: 1, col: 1, paramEntities: make(map[string]string)}
	p.skipSpace()
	m, err := p.parseContentSpec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errf("unexpected trailing input %q", p.rest())
	}
	return m, nil
}

type dtdParser struct {
	src           string
	pos           int
	line          int
	col           int
	paramEntities map[string]string
}

func (p *dtdParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Column: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *dtdParser) eof() bool    { return p.pos >= len(p.src) }
func (p *dtdParser) rest() string { return p.src[p.pos:] }

func (p *dtdParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *dtdParser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *dtdParser) hasPrefix(s string) bool { return strings.HasPrefix(p.rest(), s) }

func (p *dtdParser) expect(s string) error {
	if !p.hasPrefix(s) {
		return p.errf("expected %q", s)
	}
	for range s {
		p.advance()
	}
	return nil
}

func (p *dtdParser) skipSpace() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r', '\n':
			p.advance()
		default:
			return
		}
	}
}

// skipSpaceAndPERefs skips whitespace and expands parameter-entity
// references in declaration positions by splicing their replacement text
// into the input.
func (p *dtdParser) skipSpaceAndPERefs() error {
	for {
		p.skipSpace()
		if p.eof() || p.peek() != '%' {
			return nil
		}
		if err := p.expandPERef(); err != nil {
			return err
		}
	}
}

func (p *dtdParser) expandPERef() error {
	if err := p.expect("%"); err != nil {
		return err
	}
	name, err := p.readName()
	if err != nil {
		return p.errf("malformed parameter-entity reference")
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	val, ok := p.paramEntities[name]
	if !ok {
		return p.errf("reference to undeclared parameter entity %%%s;", name)
	}
	// Splice the replacement text (padded with spaces, per XML 1.0 §4.4.8)
	// into the remaining input.
	p.src = p.src[:p.pos] + " " + val + " " + p.src[p.pos:]
	return nil
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *dtdParser) readName() (string, error) {
	if p.eof() || !isNameStart(p.peek()) {
		return "", p.errf("expected a name")
	}
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.advance()
	}
	return p.src[start:p.pos], nil
}

func (p *dtdParser) readQuoted() (string, error) {
	if p.eof() || (p.peek() != '"' && p.peek() != '\'') {
		return "", p.errf("expected a quoted literal")
	}
	quote := p.advance()
	start := p.pos
	for !p.eof() && p.peek() != quote {
		p.advance()
	}
	if p.eof() {
		return "", p.errf("unterminated literal")
	}
	s := p.src[start:p.pos]
	p.advance()
	return s, nil
}

func (p *dtdParser) parse() (*DTD, error) {
	d := NewDTD("")
	for {
		if err := p.skipSpaceAndPERefs(); err != nil {
			return nil, err
		}
		if p.eof() {
			return d, nil
		}
		switch {
		case p.hasPrefix("<!--"):
			if err := p.skipComment(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<?"):
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!ELEMENT"):
			if err := p.parseElementDecl(d); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!ATTLIST"):
			if err := p.parseAttlistDecl(d); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!ENTITY"):
			if err := p.parseEntityDecl(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!NOTATION"):
			if err := p.skipDecl(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected input %q", truncate(p.rest(), 20))
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *dtdParser) skipComment() error {
	if err := p.expect("<!--"); err != nil {
		return err
	}
	for !p.eof() {
		if p.hasPrefix("-->") {
			p.advance()
			p.advance()
			p.advance()
			return nil
		}
		p.advance()
	}
	return p.errf("unterminated comment")
}

func (p *dtdParser) skipPI() error {
	if err := p.expect("<?"); err != nil {
		return err
	}
	for !p.eof() {
		if p.hasPrefix("?>") {
			p.advance()
			p.advance()
			return nil
		}
		p.advance()
	}
	return p.errf("unterminated processing instruction")
}

// skipDecl consumes a declaration up to its closing '>', honoring quotes.
func (p *dtdParser) skipDecl() error {
	for !p.eof() {
		c := p.advance()
		if c == '"' || c == '\'' {
			for !p.eof() && p.peek() != c {
				p.advance()
			}
			if p.eof() {
				return p.errf("unterminated literal in declaration")
			}
			p.advance()
			continue
		}
		if c == '>' {
			return nil
		}
	}
	return p.errf("unterminated declaration")
}

func (p *dtdParser) parseElementDecl(d *DTD) error {
	if err := p.expect("<!ELEMENT"); err != nil {
		return err
	}
	if err := p.skipSpaceAndPERefs(); err != nil {
		return err
	}
	name, err := p.readName()
	if err != nil {
		return err
	}
	if err := p.skipSpaceAndPERefs(); err != nil {
		return err
	}
	model, err := p.parseContentSpec()
	if err != nil {
		return err
	}
	if err := p.skipSpaceAndPERefs(); err != nil {
		return err
	}
	if p.eof() || p.peek() != '>' {
		return p.errf("expected '>' to close <!ELEMENT %s>", name)
	}
	p.advance()
	if _, dup := d.Elements[name]; dup {
		return p.errf("duplicate declaration of element %q", name)
	}
	d.Declare(name, model)
	return nil
}

// parseContentSpec parses EMPTY | ANY | Mixed | children.
func (p *dtdParser) parseContentSpec() (*Content, error) {
	switch {
	case p.hasPrefix("EMPTY"):
		if err := p.expect("EMPTY"); err != nil {
			return nil, err
		}
		return NewEmpty(), nil
	case p.hasPrefix("ANY"):
		if err := p.expect("ANY"); err != nil {
			return nil, err
		}
		return NewAny(), nil
	case p.peek() == '(':
		return p.parseGroupOrMixed()
	default:
		return nil, p.errf("expected EMPTY, ANY, or '('")
	}
}

// parseGroupOrMixed parses either a mixed-content declaration
// (#PCDATA | a | b)* or a children group.
func (p *dtdParser) parseGroupOrMixed() (*Content, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.skipSpaceAndPERefs(); err != nil {
		return nil, err
	}
	if p.hasPrefix("#PCDATA") {
		return p.parseMixedTail()
	}
	return p.parseGroupTail()
}

func (p *dtdParser) parseMixedTail() (*Content, error) {
	if err := p.expect("#PCDATA"); err != nil {
		return nil, err
	}
	var names []string
	for {
		if err := p.skipSpaceAndPERefs(); err != nil {
			return nil, err
		}
		if p.eof() {
			return nil, p.errf("unterminated mixed-content group")
		}
		if p.peek() == ')' {
			p.advance()
			if len(names) == 0 {
				// (#PCDATA) — trailing '*' optional.
				if !p.eof() && p.peek() == '*' {
					p.advance()
				}
				return NewPCDATA(), nil
			}
			if p.eof() || p.peek() != '*' {
				return nil, p.errf("mixed content with elements must end in ')*'")
			}
			p.advance()
			kids := []*Content{NewPCDATA()}
			for _, n := range names {
				kids = append(kids, NewName(n))
			}
			return NewStar(NewChoice(kids...)), nil
		}
		if p.peek() != '|' {
			return nil, p.errf("expected '|' or ')' in mixed-content group")
		}
		p.advance()
		if err := p.skipSpaceAndPERefs(); err != nil {
			return nil, err
		}
		n, err := p.readName()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
	}
}

// parseGroupTail parses the remainder of a children group after '(' and
// leading space have been consumed, then an optional occurrence operator.
func (p *dtdParser) parseGroupTail() (*Content, error) {
	var items []*Content
	var sep byte // ',' or '|', fixed by the first separator seen
	first, err := p.parseCP()
	if err != nil {
		return nil, err
	}
	items = append(items, first)
	for {
		if err := p.skipSpaceAndPERefs(); err != nil {
			return nil, err
		}
		if p.eof() {
			return nil, p.errf("unterminated group")
		}
		c := p.peek()
		if c == ')' {
			p.advance()
			break
		}
		if c != ',' && c != '|' {
			return nil, p.errf("expected ',', '|' or ')' in group")
		}
		if sep == 0 {
			sep = c
		} else if c != sep {
			return nil, p.errf("cannot mix ',' and '|' in one group")
		}
		p.advance()
		if err := p.skipSpaceAndPERefs(); err != nil {
			return nil, err
		}
		item, err := p.parseCP()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	var group *Content
	switch {
	case len(items) == 1:
		group = items[0]
	case sep == '|':
		group = NewChoice(items...)
	default:
		group = NewSeq(items...)
	}
	return p.applyOccurrence(group), nil
}

// parseCP parses one content particle: Name, or a nested group, followed by
// an optional occurrence operator.
func (p *dtdParser) parseCP() (*Content, error) {
	if p.eof() {
		return nil, p.errf("unexpected end of content model")
	}
	if p.peek() == '(' {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if err := p.skipSpaceAndPERefs(); err != nil {
			return nil, err
		}
		return p.parseGroupTail()
	}
	name, err := p.readName()
	if err != nil {
		return nil, err
	}
	return p.applyOccurrence(NewName(name)), nil
}

func (p *dtdParser) applyOccurrence(c *Content) *Content {
	if p.eof() {
		return c
	}
	switch p.peek() {
	case '?':
		p.advance()
		return NewOpt(c)
	case '*':
		p.advance()
		return NewStar(c)
	case '+':
		p.advance()
		return NewPlus(c)
	}
	return c
}

func (p *dtdParser) parseAttlistDecl(d *DTD) error {
	if err := p.expect("<!ATTLIST"); err != nil {
		return err
	}
	if err := p.skipSpaceAndPERefs(); err != nil {
		return err
	}
	elem, err := p.readName()
	if err != nil {
		return err
	}
	for {
		if err := p.skipSpaceAndPERefs(); err != nil {
			return err
		}
		if p.eof() {
			return p.errf("unterminated <!ATTLIST %s>", elem)
		}
		if p.peek() == '>' {
			p.advance()
			return nil
		}
		attName, err := p.readName()
		if err != nil {
			return err
		}
		if err := p.skipSpaceAndPERefs(); err != nil {
			return err
		}
		attType, err := p.readAttType()
		if err != nil {
			return err
		}
		if err := p.skipSpaceAndPERefs(); err != nil {
			return err
		}
		def := AttDef{Name: attName, Type: attType}
		switch {
		case p.hasPrefix("#REQUIRED"):
			_ = p.expect("#REQUIRED")
			def.Mode = "#REQUIRED"
		case p.hasPrefix("#IMPLIED"):
			_ = p.expect("#IMPLIED")
			def.Mode = "#IMPLIED"
		case p.hasPrefix("#FIXED"):
			_ = p.expect("#FIXED")
			def.Mode = "#FIXED"
			if err := p.skipSpaceAndPERefs(); err != nil {
				return err
			}
			if def.Default, err = p.readQuoted(); err != nil {
				return err
			}
		default:
			if def.Default, err = p.readQuoted(); err != nil {
				return err
			}
		}
		if d.Attlists == nil {
			d.Attlists = make(map[string][]AttDef)
		}
		d.Attlists[elem] = append(d.Attlists[elem], def)
	}
}

// readAttType reads an attribute type: a keyword (CDATA, ID, IDREF, ...),
// NOTATION with its group, or an enumeration group.
func (p *dtdParser) readAttType() (string, error) {
	if p.peek() == '(' {
		return p.readEnumGroup()
	}
	name, err := p.readName()
	if err != nil {
		return "", err
	}
	if name == "NOTATION" {
		if err := p.skipSpaceAndPERefs(); err != nil {
			return "", err
		}
		group, err := p.readEnumGroup()
		if err != nil {
			return "", err
		}
		return "NOTATION " + group, nil
	}
	return name, nil
}

func (p *dtdParser) readEnumGroup() (string, error) {
	if err := p.expect("("); err != nil {
		return "", err
	}
	start := p.pos
	for !p.eof() && p.peek() != ')' {
		p.advance()
	}
	if p.eof() {
		return "", p.errf("unterminated enumeration group")
	}
	body := p.src[start:p.pos]
	p.advance()
	return "(" + strings.TrimSpace(body) + ")", nil
}

func (p *dtdParser) parseEntityDecl() error {
	if err := p.expect("<!ENTITY"); err != nil {
		return err
	}
	p.skipSpace()
	isParam := false
	if p.peek() == '%' {
		isParam = true
		p.advance()
		p.skipSpace()
	}
	name, err := p.readName()
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.hasPrefix("SYSTEM") || p.hasPrefix("PUBLIC") {
		// External entity: record nothing (offline), skip to '>'.
		return p.skipDecl()
	}
	val, err := p.readQuoted()
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.eof() || p.peek() != '>' {
		return p.errf("expected '>' to close <!ENTITY %s>", name)
	}
	p.advance()
	if isParam {
		if _, dup := p.paramEntities[name]; !dup {
			// First declaration binds, per XML 1.0.
			p.paramEntities[name] = val
		}
	}
	// General entities are handled by the document parser; nothing to do.
	return nil
}
