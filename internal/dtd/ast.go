// Package dtd implements Document Type Definitions: a content-model AST
// matching the paper's DTD tree representation (labels from EN ∪ ET ∪ OP
// with ET = {#PCDATA, ANY} and OP = {AND, OR, ?, *, +}), a parser for DTD
// declaration syntax including parameter entities, a serializer, and the
// rewriting rules used to simplify evolved DTDs into equivalent, more
// concise ones.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the variant of a content-model node.
type Kind int

const (
	// Name is a reference to a child element, e.g. b in (b, c).
	Name Kind = iota
	// PCDATA is the #PCDATA basic type.
	PCDATA
	// Any is the ANY content specification.
	Any
	// Empty is the EMPTY content specification.
	Empty
	// Seq is the paper's AND operator: a sequence (a, b, c).
	Seq
	// Choice is the paper's OR operator: an alternative (a | b | c).
	Choice
	// Opt is the ? operator: optional content.
	Opt
	// Star is the * operator: zero or more repetitions.
	Star
	// Plus is the + operator: one or more repetitions.
	Plus
)

// String returns the paper's label for the node kind.
func (k Kind) String() string {
	switch k {
	case Name:
		return "name"
	case PCDATA:
		return "#PCDATA"
	case Any:
		return "ANY"
	case Empty:
		return "EMPTY"
	case Seq:
		return "AND"
	case Choice:
		return "OR"
	case Opt:
		return "?"
	case Star:
		return "*"
	case Plus:
		return "+"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Content is a node of a content-model tree.
//
// Name nodes carry the referenced element name and have no children. Seq and
// Choice have one or more children. Opt, Star and Plus have exactly one
// child. PCDATA, Any and Empty are leaves.
type Content struct {
	Kind     Kind
	Name     string
	Children []*Content
}

// Convenience constructors. They do not simplify; see Rewrite.

// NewName returns a Name node for the element called name.
func NewName(name string) *Content { return &Content{Kind: Name, Name: name} }

// NewSeq returns an AND node over the given children.
func NewSeq(children ...*Content) *Content { return &Content{Kind: Seq, Children: children} }

// NewChoice returns an OR node over the given children.
func NewChoice(children ...*Content) *Content { return &Content{Kind: Choice, Children: children} }

// NewOpt wraps c in the ? operator.
func NewOpt(c *Content) *Content { return &Content{Kind: Opt, Children: []*Content{c}} }

// NewStar wraps c in the * operator.
func NewStar(c *Content) *Content { return &Content{Kind: Star, Children: []*Content{c}} }

// NewPlus wraps c in the + operator.
func NewPlus(c *Content) *Content { return &Content{Kind: Plus, Children: []*Content{c}} }

// NewPCDATA returns a #PCDATA leaf.
func NewPCDATA() *Content { return &Content{Kind: PCDATA} }

// NewAny returns an ANY leaf.
func NewAny() *Content { return &Content{Kind: Any} }

// NewEmpty returns an EMPTY leaf.
func NewEmpty() *Content { return &Content{Kind: Empty} }

// AttDef is a single attribute definition from an <!ATTLIST> declaration.
// Attributes play no role in the paper's structural algorithms but are
// parsed and preserved so that round-tripping a DTD does not lose them.
type AttDef struct {
	Name    string // attribute name
	Type    string // CDATA, ID, IDREF, enumeration source text, ...
	Mode    string // #REQUIRED, #IMPLIED, #FIXED, or empty
	Default string // default value, if any
}

// DTD is a parsed document type definition: a set of element declarations.
type DTD struct {
	// Name is the DTD's name. For a DTD extracted from a DOCTYPE it is the
	// declared root element; for standalone files it may be set by the
	// caller. When non-empty it identifies the root element declaration.
	Name string
	// Elements maps element names to their content models.
	Elements map[string]*Content
	// Order preserves element declaration order for serialization.
	Order []string
	// Attlists maps element names to their attribute definitions.
	Attlists map[string][]AttDef
}

// NewDTD returns an empty DTD with the given name.
func NewDTD(name string) *DTD {
	return &DTD{
		Name:     name,
		Elements: make(map[string]*Content),
		Attlists: make(map[string][]AttDef),
	}
}

// Declare adds (or replaces) the declaration of an element. Declaration
// order is preserved for new elements.
func (d *DTD) Declare(name string, model *Content) {
	if _, exists := d.Elements[name]; !exists {
		d.Order = append(d.Order, name)
	}
	d.Elements[name] = model
}

// Root returns the content model of the root element (the element named by
// d.Name, or the first declared element when d.Name is empty) and its name.
func (d *DTD) Root() (string, *Content) {
	if d.Name != "" {
		if m, ok := d.Elements[d.Name]; ok {
			return d.Name, m
		}
	}
	if len(d.Order) > 0 {
		return d.Order[0], d.Elements[d.Order[0]]
	}
	return "", nil
}

// Clone returns a deep copy of the DTD.
func (d *DTD) Clone() *DTD {
	c := NewDTD(d.Name)
	c.Order = append([]string(nil), d.Order...)
	for name, m := range d.Elements {
		c.Elements[name] = m.Clone()
	}
	for name, atts := range d.Attlists {
		c.Attlists[name] = append([]AttDef(nil), atts...)
	}
	return c
}

// Clone returns a deep copy of the content model.
func (c *Content) Clone() *Content {
	if c == nil {
		return nil
	}
	out := &Content{Kind: c.Kind, Name: c.Name}
	for _, ch := range c.Children {
		out.Children = append(out.Children, ch.Clone())
	}
	return out
}

// Equal reports whether two content models are structurally identical.
func (c *Content) Equal(o *Content) bool {
	if c == nil || o == nil {
		return c == o
	}
	if c.Kind != o.Kind || c.Name != o.Name || len(c.Children) != len(o.Children) {
		return false
	}
	for i := range c.Children {
		if !c.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Labels returns the paper's αβ applied to a DTD element: the set of tags of
// the direct subelements, independent of the operators used in the
// declaration. For (b, (c | d)*) it returns {b, c, d}, sorted.
func (c *Content) Labels() []string {
	seen := make(map[string]bool)
	var out []string
	var visit func(*Content)
	visit = func(n *Content) {
		if n == nil {
			return
		}
		if n.Kind == Name {
			if !seen[n.Name] {
				seen[n.Name] = true
				out = append(out, n.Name)
			}
			return
		}
		for _, ch := range n.Children {
			visit(ch)
		}
	}
	visit(c)
	sort.Strings(out)
	return out
}

// HasPCDATA reports whether the model contains a #PCDATA leaf.
func (c *Content) HasPCDATA() bool {
	if c == nil {
		return false
	}
	if c.Kind == PCDATA {
		return true
	}
	for _, ch := range c.Children {
		if ch.HasPCDATA() {
			return true
		}
	}
	return false
}

// IsMixed reports whether the model is a mixed-content declaration:
// (#PCDATA | a | b)* or (#PCDATA).
func (c *Content) IsMixed() bool {
	if c == nil {
		return false
	}
	if c.Kind == PCDATA {
		return true
	}
	if c.Kind == Star && len(c.Children) == 1 {
		ch := c.Children[0]
		if ch.Kind == Choice && len(ch.Children) > 0 && ch.Children[0].Kind == PCDATA {
			return true
		}
		if ch.Kind == PCDATA {
			return true
		}
	}
	return false
}

// NodeCount returns the number of nodes in the content-model tree; it is
// the conciseness measure used by the evaluation harness.
func (c *Content) NodeCount() int {
	if c == nil {
		return 0
	}
	n := 1
	for _, ch := range c.Children {
		n += ch.NodeCount()
	}
	return n
}

// Nullable reports whether the content model matches the empty sequence of
// child elements.
func (c *Content) Nullable() bool {
	if c == nil {
		return true
	}
	switch c.Kind {
	case Empty:
		return true
	case Any:
		return true
	case PCDATA:
		return true // character data is not a child *element*
	case Name:
		return false
	case Opt, Star:
		return true
	case Plus:
		return c.Children[0].Nullable()
	case Seq:
		for _, ch := range c.Children {
			if !ch.Nullable() {
				return false
			}
		}
		return true
	case Choice:
		for _, ch := range c.Children {
			if ch.Nullable() {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// String renders the content model in DTD declaration syntax, e.g.
// "(b, (c | d)*, e?)".
func (c *Content) String() string {
	var b strings.Builder
	c.write(&b, true)
	return b.String()
}

func (c *Content) write(b *strings.Builder, top bool) {
	if c == nil {
		b.WriteString("EMPTY")
		return
	}
	switch c.Kind {
	case Empty:
		b.WriteString("EMPTY")
	case Any:
		b.WriteString("ANY")
	case PCDATA:
		if top {
			b.WriteString("(#PCDATA)")
		} else {
			b.WriteString("#PCDATA")
		}
	case Name:
		if top {
			// XML requires parentheses around the content model.
			b.WriteString("(")
			b.WriteString(c.Name)
			b.WriteString(")")
		} else {
			b.WriteString(c.Name)
		}
	case Seq, Choice:
		sep := ", "
		if c.Kind == Choice {
			sep = " | "
		}
		b.WriteString("(")
		for i, ch := range c.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			ch.write(b, false)
		}
		b.WriteString(")")
	case Opt, Star, Plus:
		inner := c.Children[0]
		needParens := inner.Kind == Name || inner.Kind == PCDATA
		if needParens && !top {
			// Name? is legal without parentheses inside a group.
			inner.write(b, false)
		} else if inner.Kind == Seq || inner.Kind == Choice {
			inner.write(b, false)
		} else {
			b.WriteString("(")
			inner.write(b, false)
			b.WriteString(")")
		}
		switch c.Kind {
		case Opt:
			b.WriteString("?")
		case Star:
			b.WriteString("*")
		case Plus:
			b.WriteString("+")
		}
	}
}

// String renders the whole DTD as a sequence of declarations.
func (d *DTD) String() string {
	var b strings.Builder
	for _, name := range d.Order {
		model := d.Elements[name]
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, model.String())
		for _, att := range d.Attlists[name] {
			fmt.Fprintf(&b, "<!ATTLIST %s %s %s", name, att.Name, att.Type)
			if att.Mode != "" {
				b.WriteString(" " + att.Mode)
			}
			if att.Default != "" {
				fmt.Fprintf(&b, " %q", att.Default)
			}
			b.WriteString(">\n")
		}
	}
	return b.String()
}

// Equal reports whether two DTDs declare the same elements with structurally
// identical content models (attribute lists are ignored).
func (d *DTD) Equal(o *DTD) bool {
	if len(d.Elements) != len(o.Elements) {
		return false
	}
	for name, m := range d.Elements {
		om, ok := o.Elements[name]
		if !ok || !m.Equal(om) {
			return false
		}
	}
	return true
}

// TreeString renders the content model in the paper's tree notation, one
// node per line, for golden tests and debugging. Example for (b, c)*:
//
//	*
//	  AND
//	    b
//	    c
func (c *Content) TreeString() string {
	var b strings.Builder
	c.writeTree(&b, 0)
	return b.String()
}

func (c *Content) writeTree(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if c == nil {
		b.WriteString("EMPTY\n")
		return
	}
	if c.Kind == Name {
		b.WriteString(c.Name)
	} else {
		b.WriteString(c.Kind.String())
	}
	b.WriteByte('\n')
	for _, ch := range c.Children {
		ch.writeTree(b, depth+1)
	}
}
