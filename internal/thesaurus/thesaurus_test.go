package thesaurus

import (
	"reflect"
	"testing"
)

func TestSimilarityBasics(t *testing.T) {
	th := New()
	if th.Similarity("a", "a") != 1 {
		t.Error("identity != 1")
	}
	if th.Similarity("a", "b") != 0 {
		t.Error("unknown pair != 0")
	}
	th.AddSynonyms("author", "writer")
	if th.Similarity("author", "writer") != 1 || th.Similarity("writer", "author") != 1 {
		t.Error("synonyms != 1")
	}
	th.Relate("price", "cost", 0.8)
	if th.Similarity("price", "cost") != 0.8 || th.Similarity("cost", "price") != 0.8 {
		t.Error("related pair != 0.8")
	}
}

func TestSynonymClassesMergeTransitively(t *testing.T) {
	th := New()
	th.AddSynonyms("a", "b")
	th.AddSynonyms("b", "c")
	th.AddSynonyms("d", "e")
	th.AddSynonyms("c", "d")
	for _, pair := range [][2]string{{"a", "c"}, {"a", "e"}, {"b", "d"}} {
		if th.Similarity(pair[0], pair[1]) != 1 {
			t.Errorf("%v not merged", pair)
		}
	}
	if got := th.Synonyms("a"); !reflect.DeepEqual(got, []string{"b", "c", "d", "e"}) {
		t.Errorf("Synonyms(a) = %v", got)
	}
}

func TestRelateThroughSynonyms(t *testing.T) {
	th := New()
	th.AddSynonyms("price", "cost")
	th.Relate("price", "fee", 0.7)
	// The relation is declared on the class: cost inherits it.
	if th.Similarity("cost", "fee") != 0.7 {
		t.Errorf("cost~fee = %v, want 0.7", th.Similarity("cost", "fee"))
	}
}

func TestRelateClamping(t *testing.T) {
	th := New()
	th.Relate("a", "b", 1.5)
	if th.Similarity("a", "b") != 1 {
		t.Error("degree ≥ 1 should make synonyms")
	}
	th.Relate("c", "d", 0.5)
	th.Relate("c", "d", 0)
	if th.Similarity("c", "d") != 0 {
		t.Error("degree 0 should remove the relation")
	}
}

func TestLoad(t *testing.T) {
	th, err := LoadString(`
# a comment

author = writer = byline
price ~ cost : 0.8
title ~ headline
`)
	if err != nil {
		t.Fatal(err)
	}
	if th.Similarity("author", "byline") != 1 {
		t.Error("synonym line not applied")
	}
	if th.Similarity("price", "cost") != 0.8 {
		t.Error("weighted line not applied")
	}
	if th.Similarity("title", "headline") != 0.5 {
		t.Errorf("default degree = %v, want 0.5", th.Similarity("title", "headline"))
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"just a line",
		"a =",
		"a ~ b : nope",
		"a ~ b : 1.5",
		"~ b : 0.5",
	}
	for _, src := range cases {
		if _, err := LoadString(src); err == nil {
			t.Errorf("LoadString(%q) succeeded, want error", src)
		}
	}
}

func TestSimilarityFunc(t *testing.T) {
	th := New()
	th.AddSynonyms("a", "b")
	f := th.SimilarityFunc()
	if f("a", "b") != 1 || f("a", "z") != 0 {
		t.Error("SimilarityFunc mismatch")
	}
}
