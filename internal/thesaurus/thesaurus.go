// Package thesaurus implements the tag-similarity extension sketched in §6
// of the paper: "evaluate structural similarity shifting from tag equality
// to tag similarity" by relying on a thesaurus (the paper cites WordNet).
//
// WordNet itself is unavailable offline; the substitution (DESIGN.md §4) is
// a domain thesaurus the application loads explicitly: synonym classes
// (degree 1) and weighted related-term pairs (degree in (0, 1)). Lookup is
// symmetric, reflexive (every tag is similar to itself with degree 1), and
// transitive across synonym classes but not across weighted relations.
package thesaurus

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Thesaurus answers tag-similarity queries. The zero value is not usable;
// call New.
type Thesaurus struct {
	// class maps a tag to its synonym-class representative.
	class map[string]string
	// related maps a canonical pair key to a degree in (0, 1).
	related map[[2]string]float64
}

// New returns an empty thesaurus.
func New() *Thesaurus {
	return &Thesaurus{
		class:   make(map[string]string),
		related: make(map[[2]string]float64),
	}
}

// AddSynonyms declares the tags as full synonyms (pairwise degree 1).
// Synonym classes merge transitively: AddSynonyms(a, b) followed by
// AddSynonyms(b, c) puts a, b, c in one class.
func (t *Thesaurus) AddSynonyms(tags ...string) {
	if len(tags) == 0 {
		return
	}
	// Collect representatives of all touched classes, then unify.
	rep := t.canonical(tags[0])
	for _, tag := range tags[1:] {
		other := t.canonical(tag)
		if other == rep {
			continue
		}
		// Redirect the whole class of other to rep.
		for k, v := range t.class {
			if v == other {
				t.class[k] = rep
			}
		}
		t.class[other] = rep
	}
	for _, tag := range tags {
		t.class[tag] = rep
	}
}

// Relate declares a weighted similarity in (0, 1) between two tags (not
// transitive). Degrees outside (0, 1) are clamped: 0 removes the relation,
// ≥ 1 makes the tags synonyms.
func (t *Thesaurus) Relate(a, b string, degree float64) {
	switch {
	case degree >= 1:
		t.AddSynonyms(a, b)
	case degree <= 0:
		delete(t.related, pairKey(t.canonical(a), t.canonical(b)))
	default:
		t.related[pairKey(t.canonical(a), t.canonical(b))] = degree
	}
}

// Similarity returns the similarity degree of two tags in [0, 1]: 1 for
// identical tags or synonyms, the declared degree for related tags, 0
// otherwise.
func (t *Thesaurus) Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	ca, cb := t.canonical(a), t.canonical(b)
	if ca == cb {
		return 1
	}
	if deg, ok := t.related[pairKey(ca, cb)]; ok {
		return deg
	}
	return 0
}

// Synonyms returns the tags known to be full synonyms of tag (excluding
// tag itself), sorted.
func (t *Thesaurus) Synonyms(tag string) []string {
	rep := t.canonical(tag)
	var out []string
	for k, v := range t.class {
		if v == rep && k != tag {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// SimilarityFunc adapts the thesaurus to the similarity measure's
// TagSimilarity hook.
func (t *Thesaurus) SimilarityFunc() func(a, b string) float64 {
	return t.Similarity
}

func (t *Thesaurus) canonical(tag string) string {
	if rep, ok := t.class[tag]; ok {
		return rep
	}
	return tag
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Load reads a thesaurus from a simple line format:
//
//	# comment
//	author = writer = byline        synonym class
//	price ~ cost : 0.8              weighted relation
//
// Blank lines and lines starting with '#' are ignored.
func Load(r io.Reader) (*Thesaurus, error) {
	t := New()
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.Contains(line, "="):
			parts := strings.Split(line, "=")
			tags := make([]string, 0, len(parts))
			for _, p := range parts {
				p = strings.TrimSpace(p)
				if p == "" {
					return nil, fmt.Errorf("thesaurus: line %d: empty synonym", lineNo)
				}
				tags = append(tags, p)
			}
			if len(tags) < 2 {
				return nil, fmt.Errorf("thesaurus: line %d: synonym class needs at least two tags", lineNo)
			}
			t.AddSynonyms(tags...)
		case strings.Contains(line, "~"):
			rest := line
			degree := 0.5
			if i := strings.LastIndex(rest, ":"); i >= 0 {
				d, err := strconv.ParseFloat(strings.TrimSpace(rest[i+1:]), 64)
				if err != nil {
					return nil, fmt.Errorf("thesaurus: line %d: bad degree: %v", lineNo, err)
				}
				degree = d
				rest = rest[:i]
			}
			parts := strings.SplitN(rest, "~", 2)
			a, b := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			if a == "" || b == "" {
				return nil, fmt.Errorf("thesaurus: line %d: relation needs two tags", lineNo)
			}
			if degree <= 0 || degree > 1 {
				return nil, fmt.Errorf("thesaurus: line %d: degree %v out of (0, 1]", lineNo, degree)
			}
			t.Relate(a, b, degree)
		default:
			return nil, fmt.Errorf("thesaurus: line %d: expected '=' or '~'", lineNo)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("thesaurus: reading: %w", err)
	}
	return t, nil
}

// LoadString is Load over a string.
func LoadString(s string) (*Thesaurus, error) {
	return Load(strings.NewReader(s))
}
