package mine

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func tx(items ...string) Transaction { return NewTransaction(items, 1) }

// TestPaperExample3 reproduces Example 3: S = {{a,b,c}, {a,b}, {b,c,d}},
// rule R = c → a,b has support 1/3 and confidence 1/2.
func TestPaperExample3(t *testing.T) {
	table := NewTable([]Transaction{tx("a", "b", "c"), tx("a", "b"), tx("b", "c", "d")})
	if got := table.Support([]string{"a", "b", "c"}); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("Support({a,b,c}) = %v, want 1/3", got)
	}
	if got := table.Confidence([]string{"c"}, []string{"a", "b"}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Confidence(c => a,b) = %v, want 1/2", got)
	}
}

// TestPaperExample4 reproduces Example 4: with Label = {a,b,c,d}, the
// sequences {a,b,c}, {a,b}, {b,c,d} augment to {a,b,c,¬d}, {a,b,¬c,¬d},
// {¬a,b,c,d}.
func TestPaperExample4(t *testing.T) {
	universe := []string{"a", "b", "c", "d"}
	seqs := []Transaction{tx("a", "b", "c"), tx("a", "b"), tx("b", "c", "d")}
	aug := AugmentAll(seqs, universe)
	want := [][]string{
		normalize([]string{"a", "b", "c", Absent("d")}),
		normalize([]string{"a", "b", Absent("c"), Absent("d")}),
		normalize([]string{Absent("a"), "b", "c", "d"}),
	}
	for i, tr := range aug {
		if !reflect.DeepEqual(tr.Items, want[i]) {
			t.Errorf("augmented[%d] = %v, want %v", i, tr.Items, want[i])
		}
	}
}

func TestAbsentHelpers(t *testing.T) {
	a := Absent("b")
	if !IsAbsent(a) || IsAbsent("b") {
		t.Error("IsAbsent misbehaves")
	}
	if Present(a) != "b" || Present("b") != "b" {
		t.Error("Present misbehaves")
	}
}

func TestTransactionNormalization(t *testing.T) {
	tr := NewTransaction([]string{"c", "a", "c", "b", "a"}, 2)
	if !reflect.DeepEqual(tr.Items, []string{"a", "b", "c"}) {
		t.Errorf("items = %v", tr.Items)
	}
	if tr.Count != 2 {
		t.Errorf("count = %d", tr.Count)
	}
}

func TestTableWithMultiplicities(t *testing.T) {
	table := NewTable([]Transaction{
		NewTransaction([]string{"a", "b"}, 3),
		NewTransaction([]string{"a"}, 1),
	})
	if table.Total() != 4 {
		t.Errorf("total = %d", table.Total())
	}
	if got := table.Support([]string{"a", "b"}); got != 0.75 {
		t.Errorf("support = %v", got)
	}
	if got := table.Confidence([]string{"a"}, []string{"b"}); got != 0.75 {
		t.Errorf("confidence = %v", got)
	}
	if got := table.Confidence([]string{"zz"}, []string{"b"}); got != 0 {
		t.Errorf("confidence of unseen antecedent = %v", got)
	}
}

func minersUnderTest() map[string]Miner {
	return map[string]Miner{"apriori": Apriori{}, "fpgrowth": FPGrowth{}}
}

func TestFrequentItemsetsSmall(t *testing.T) {
	txs := []Transaction{
		tx("a", "b", "c"),
		tx("a", "b"),
		tx("a", "c"),
		tx("b", "c"),
		tx("a", "b", "c"),
	}
	for name, m := range minersUnderTest() {
		t.Run(name, func(t *testing.T) {
			freq := m.FrequentItemsets(txs, 0.6, 0)
			got := make(map[string]float64)
			for _, f := range freq {
				got[Key(f.Items)] = f.Support
			}
			want := map[string]float64{
				Key([]string{"a"}):      0.8,
				Key([]string{"b"}):      0.8,
				Key([]string{"c"}):      0.8,
				Key([]string{"a", "b"}): 0.6,
				Key([]string{"a", "c"}): 0.6,
				Key([]string{"b", "c"}): 0.6,
			}
			if len(got) != len(want) {
				t.Fatalf("itemsets = %v, want %v", got, want)
			}
			for k, sup := range want {
				if math.Abs(got[k]-sup) > 1e-12 {
					t.Errorf("support[%q] = %v, want %v", k, got[k], sup)
				}
			}
		})
	}
}

func TestFrequentItemsetsMaxSize(t *testing.T) {
	txs := []Transaction{tx("a", "b", "c"), tx("a", "b", "c")}
	for name, m := range minersUnderTest() {
		t.Run(name, func(t *testing.T) {
			freq := m.FrequentItemsets(txs, 0.5, 2)
			for _, f := range freq {
				if len(f.Items) > 2 {
					t.Errorf("itemset %v exceeds max size", f.Items)
				}
			}
		})
	}
}

func TestFrequentItemsetsEmpty(t *testing.T) {
	for name, m := range minersUnderTest() {
		t.Run(name, func(t *testing.T) {
			if freq := m.FrequentItemsets(nil, 0.5, 0); freq != nil {
				t.Errorf("itemsets over no transactions = %v", freq)
			}
		})
	}
}

func canonical(freq []FrequentSet) []string {
	out := make([]string, 0, len(freq))
	for _, f := range freq {
		out = append(out, Key(f.Items))
	}
	sort.Strings(out)
	return out
}

func TestPropertyAprioriEqualsFPGrowth(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		txs := make([]Transaction, n)
		for i := range txs {
			var its []string
			for _, it := range items {
				if r.Intn(2) == 0 {
					its = append(its, it)
				}
			}
			if len(its) == 0 {
				its = []string{"a"}
			}
			txs[i] = NewTransaction(its, 1+r.Intn(3))
		}
		minSup := []float64{0.1, 0.3, 0.5, 0.8}[r.Intn(4)]
		a := Apriori{}.FrequentItemsets(txs, minSup, 0)
		fp := FPGrowth{}.FrequentItemsets(txs, minSup, 0)
		if !reflect.DeepEqual(canonical(a), canonical(fp)) {
			t.Logf("apriori: %v", canonical(a))
			t.Logf("fpgrowth: %v", canonical(fp))
			return false
		}
		// Supports must agree too.
		am := make(map[string]float64)
		for _, s := range a {
			am[Key(s.Items)] = s.Support
		}
		for _, s := range fp {
			if math.Abs(am[Key(s.Items)]-s.Support) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRules(t *testing.T) {
	txs := []Transaction{
		tx("a", "b"), tx("a", "b"), tx("a", "b"), tx("a"),
	}
	table := NewTable(txs)
	freq := Apriori{}.FrequentItemsets(txs, 0.5, 0)
	rules := GenerateRules(freq, table, 1.0)
	// b => a has confidence 1; a => b has confidence 0.75 and is excluded.
	foundBA, foundAB := false, false
	for _, r := range rules {
		if reflect.DeepEqual(r.Antecedent, []string{"b"}) && reflect.DeepEqual(r.Consequent, []string{"a"}) {
			foundBA = true
			if r.Confidence != 1 {
				t.Errorf("conf(b=>a) = %v", r.Confidence)
			}
		}
		if reflect.DeepEqual(r.Antecedent, []string{"a"}) && reflect.DeepEqual(r.Consequent, []string{"b"}) {
			foundAB = true
		}
	}
	if !foundBA {
		t.Error("rule b => a missing")
	}
	if foundAB {
		t.Error("rule a => b (conf 0.75) should be excluded at minConfidence 1")
	}
	// Lower confidence threshold admits a => b.
	rules = GenerateRules(freq, table, 0.7)
	foundAB = false
	for _, r := range rules {
		if reflect.DeepEqual(r.Antecedent, []string{"a"}) && reflect.DeepEqual(r.Consequent, []string{"b"}) {
			foundAB = true
		}
	}
	if !foundAB {
		t.Error("rule a => b missing at minConfidence 0.7")
	}
	if s := rules[0].String(); s == "" {
		t.Error("empty rule string")
	}
}

func TestRuleSetHolds(t *testing.T) {
	// 10 transactions: 6 × {b,c}, 4 × {d}; universe {b,c,d,e}.
	universe := []string{"b", "c", "d", "e"}
	var txs []Transaction
	txs = append(txs, NewTransaction([]string{"b", "c"}, 6))
	txs = append(txs, NewTransaction([]string{"d"}, 4))
	aug := AugmentAll(txs, universe)
	rs := NewRuleSet(aug, 0.2, 1.0)

	if !rs.Holds([]string{"b"}, []string{"c"}) {
		t.Error("b => c should hold")
	}
	if !rs.MutualPresence([]string{"b", "c"}) {
		t.Error("MutualPresence(b, c) should hold")
	}
	if rs.MutualPresence([]string{"b", "d"}) {
		t.Error("MutualPresence(b, d) should not hold")
	}
	if !rs.MutuallyExclusive("b", "d") {
		t.Error("b and d should be mutually exclusive")
	}
	if rs.MutuallyExclusive("b", "c") {
		t.Error("b and c should not be mutually exclusive")
	}
	// e never occurs: d => ¬e holds, but ¬e => d does not (confidence 0.4).
	if !rs.Holds([]string{"d"}, []string{Absent("e")}) {
		t.Error("d => ¬e should hold")
	}
	if rs.MutuallyExclusive("d", "e") {
		t.Error("d, e exclusivity requires ¬e => d, which has confidence < 1")
	}
	if !rs.ImpliesPresence([]string{Absent("d")}, "b") {
		t.Error("¬d => b should hold")
	}
}

func TestRuleSetSupportThreshold(t *testing.T) {
	// A perfect-confidence rule seen only once among 100 transactions must
	// be rejected by the support threshold.
	var txs []Transaction
	txs = append(txs, NewTransaction([]string{"x", "y"}, 1))
	txs = append(txs, NewTransaction([]string{"a"}, 99))
	rs := NewRuleSet(txs, 0.05, 1.0)
	if rs.Holds([]string{"x"}, []string{"y"}) {
		t.Error("rare rule should be below the support threshold")
	}
	rsLoose := NewRuleSet(txs, 0.01, 1.0)
	if !rsLoose.Holds([]string{"x"}, []string{"y"}) {
		t.Error("rule should hold with a loose support threshold")
	}
}

func TestMutualPresenceSingleton(t *testing.T) {
	rs := NewRuleSet([]Transaction{tx("a")}, 0, 1)
	if rs.MutualPresence([]string{"a"}) {
		t.Error("MutualPresence of a singleton should be false")
	}
}
