package mine

import "sort"

// FrequentSet is an itemset together with its support.
type FrequentSet struct {
	Items   []string
	Support float64
	Count   int
}

// Miner enumerates frequent itemsets. Two implementations are provided:
// Apriori (the default; simple and fast at per-element transaction scale)
// and FPGrowth (better on large, dense transaction sets) — experiment E6
// compares them.
type Miner interface {
	// FrequentItemsets returns all itemsets with support >= minSupport and
	// size <= maxSize (0 means unbounded), sorted by descending support and
	// then lexicographically.
	FrequentItemsets(txs []Transaction, minSupport float64, maxSize int) []FrequentSet
}

// Apriori is the classic level-wise frequent-itemset miner.
type Apriori struct{}

// FrequentItemsets implements Miner.
func (Apriori) FrequentItemsets(txs []Transaction, minSupport float64, maxSize int) []FrequentSet {
	table := NewTable(txs)
	total := table.Total()
	if total == 0 {
		return nil
	}
	minCount := minCountFor(minSupport, total)

	// L1: frequent single items.
	counts := make(map[string]int)
	for _, tx := range txs {
		for _, it := range tx.Items {
			counts[it] += tx.Count
		}
	}
	var level [][]string
	for it, n := range counts {
		if n >= minCount {
			level = append(level, []string{it})
		}
	}
	sortItemsets(level)

	var out []FrequentSet
	appendLevel := func(sets [][]string) {
		for _, s := range sets {
			n := table.CountContaining(s)
			out = append(out, FrequentSet{Items: s, Support: float64(n) / float64(total), Count: n})
		}
	}
	appendLevel(level)

	for size := 2; len(level) > 0 && (maxSize == 0 || size <= maxSize); size++ {
		candidates := aprioriJoin(level)
		var next [][]string
		for _, cand := range candidates {
			if table.CountContaining(cand) >= minCount {
				next = append(next, cand)
			}
		}
		appendLevel(next)
		level = next
	}
	sortFrequent(out)
	return out
}

// minCountFor converts a fractional support threshold to an absolute count.
// Support is inclusive: an itemset with support exactly minSupport counts.
func minCountFor(minSupport float64, total int) int {
	if minSupport <= 0 {
		return 1
	}
	mc := int(minSupport * float64(total))
	if float64(mc) < minSupport*float64(total) {
		mc++
	}
	if mc < 1 {
		mc = 1
	}
	return mc
}

// aprioriJoin produces size-(k+1) candidates from the sorted size-k frequent
// sets, requiring all k-subsets to be frequent (the Apriori property).
func aprioriJoin(level [][]string) [][]string {
	freq := make(map[string]bool, len(level))
	for _, s := range level {
		freq[Key(s)] = true
	}
	var out [][]string
	seen := make(map[string]bool)
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b) {
				continue
			}
			cand := append(append([]string(nil), a...), b[len(b)-1])
			sort.Strings(cand)
			key := Key(cand)
			if seen[key] {
				continue
			}
			seen[key] = true
			if allSubsetsFrequent(cand, freq) {
				out = append(out, cand)
			}
		}
	}
	sortItemsets(out)
	return out
}

func samePrefix(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand []string, freq map[string]bool) bool {
	if len(cand) <= 2 {
		return true
	}
	sub := make([]string, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !freq[Key(sub)] {
			return false
		}
	}
	return true
}

func sortItemsets(sets [][]string) {
	sort.Slice(sets, func(i, j int) bool { return lessItems(sets[i], sets[j]) })
}

func lessItems(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func sortFrequent(out []FrequentSet) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return lessItems(out[i].Items, out[j].Items)
	})
}
