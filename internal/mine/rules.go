package mine

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is an association rule X → Y with its measured support and
// confidence over a transaction set.
type Rule struct {
	Antecedent []string
	Consequent []string
	Support    float64
	Confidence float64
}

func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup %.2f, conf %.2f)",
		strings.Join(r.Antecedent, ","), strings.Join(r.Consequent, ","), r.Support, r.Confidence)
}

// GenerateRules derives rules from frequent itemsets: for every frequent
// itemset F and non-empty proper subset A ⊂ F, the rule A → F\A is emitted
// when its confidence is at least minConfidence. The paper extracts rules
// with maximal confidence (1); pass minConfidence 1 for that behaviour.
func GenerateRules(freq []FrequentSet, table *Table, minConfidence float64) []Rule {
	index := make(map[string]FrequentSet, len(freq))
	for _, f := range freq {
		index[Key(f.Items)] = f
	}
	var out []Rule
	for _, f := range freq {
		if len(f.Items) < 2 {
			continue
		}
		subsets := properSubsets(f.Items)
		for _, a := range subsets {
			consequent := difference(f.Items, a)
			var conf float64
			if fa, ok := index[Key(a)]; ok && fa.Count > 0 {
				conf = float64(f.Count) / float64(fa.Count)
			} else {
				conf = table.Confidence(a, consequent)
			}
			if conf+1e-12 >= minConfidence {
				out = append(out, Rule{
					Antecedent: a,
					Consequent: consequent,
					Support:    f.Support,
					Confidence: conf,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if !equalItems(out[i].Antecedent, out[j].Antecedent) {
			return lessItems(out[i].Antecedent, out[j].Antecedent)
		}
		return lessItems(out[i].Consequent, out[j].Consequent)
	})
	return out
}

func properSubsets(items []string) [][]string {
	n := len(items)
	var out [][]string
	for mask := 1; mask < (1<<n)-1; mask++ {
		var sub []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, items[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

func difference(all, remove []string) []string {
	rm := make(map[string]bool, len(remove))
	for _, it := range remove {
		rm[it] = true
	}
	var out []string
	for _, it := range all {
		if !rm[it] {
			out = append(out, it)
		}
	}
	return out
}

func equalItems(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RuleSet answers the rule-membership queries of the evolution policies
// ("{x → y, y → x} ⊆ Rules") against the recorded transactions directly.
// A rule X → Y belongs to the set when support(X ∪ Y) is at least the
// support threshold and its confidence is at least the confidence threshold
// (1.0 in the paper: maximal-confidence rules).
type RuleSet struct {
	table         *Table
	minSupport    float64
	minConfidence float64
}

// NewRuleSet builds a rule query set over the given transactions.
func NewRuleSet(txs []Transaction, minSupport, minConfidence float64) *RuleSet {
	return &RuleSet{table: NewTable(txs), minSupport: minSupport, minConfidence: minConfidence}
}

// Table exposes the underlying counting table.
func (rs *RuleSet) Table() *Table { return rs.table }

// Holds reports whether the rule X → Y belongs to the set.
func (rs *RuleSet) Holds(x, y []string) bool {
	union := append(append([]string(nil), x...), y...)
	if rs.table.Support(union)+1e-12 < rs.minSupport {
		return false
	}
	return rs.table.Confidence(x, y)+1e-12 >= rs.minConfidence
}

// MutualPresence reports whether every element of set implies the presence
// of all the others (the condition of the paper's Policy 1, principle P1
// generalized to sets): for each item x, the rules x → set\{x} and
// set\{x} → x both hold.
func (rs *RuleSet) MutualPresence(set []string) bool {
	if len(set) < 2 {
		return false
	}
	for i, x := range set {
		rest := make([]string, 0, len(set)-1)
		rest = append(rest, set[:i]...)
		rest = append(rest, set[i+1:]...)
		if !rs.Holds([]string{x}, rest) || !rs.Holds(rest, []string{x}) {
			return false
		}
	}
	return true
}

// MutuallyExclusive reports the paper's principle P2 for a pair: the
// presence of x implies the absence of y and vice versa — {x → ȳ, ȳ → x}
// and symmetrically — so x and y are alternatives.
func (rs *RuleSet) MutuallyExclusive(x, y string) bool {
	return rs.Holds([]string{x}, []string{Absent(y)}) &&
		rs.Holds([]string{Absent(y)}, []string{x}) &&
		rs.Holds([]string{y}, []string{Absent(x)}) &&
		rs.Holds([]string{Absent(x)}, []string{y})
}

// NeverCoOccur reports the weaker, clique-composable half of principle P2:
// the presence of x implies the absence of y and vice versa ({x → ȳ,
// y → x̄}). Unlike MutuallyExclusive it omits the exhaustiveness direction
// (ȳ → x), which cannot hold when three or more alternatives share the
// element: the evolution engine handles exhaustiveness separately through
// optionality analysis (DESIGN.md §3.2).
func (rs *RuleSet) NeverCoOccur(x, y string) bool {
	return rs.Holds([]string{x}, []string{Absent(y)}) &&
		rs.Holds([]string{y}, []string{Absent(x)})
}

// ImpliesPresence reports whether the presence of all items in from implies
// the presence of to.
func (rs *RuleSet) ImpliesPresence(from []string, to string) bool {
	return rs.Holds(from, []string{to})
}
