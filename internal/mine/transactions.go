// Package mine implements the association-rule machinery of the paper's
// evolution phase (§4.2): transactions over element tags, the absent-element
// augmentation that lets mutually exclusive subelements be discovered,
// frequent-itemset mining (Apriori and FP-Growth), and support/confidence
// rule queries.
//
// In the paper's setting, the items of a transaction are the tags of the
// direct subelements found in one non-valid instance of a DTD element (a
// "sequence": a set, disregarding order and repetitions), optionally
// augmented with one ¬tag item for every tag of the element's label universe
// that the instance lacks.
package mine

import (
	"sort"
	"strings"
)

// AbsentPrefix marks an item that denotes the absence of an element. The
// paper writes b̄ for the absence of b.
const AbsentPrefix = "¬"

// Absent returns the item denoting the absence of tag.
func Absent(tag string) string { return AbsentPrefix + tag }

// IsAbsent reports whether the item denotes an absence.
func IsAbsent(item string) bool { return strings.HasPrefix(item, AbsentPrefix) }

// Present returns the tag an item refers to, stripping an absence marker.
func Present(item string) string { return strings.TrimPrefix(item, AbsentPrefix) }

// Transaction is an itemset with a multiplicity: the recording phase
// aggregates identical sequences, so a transaction carries how many
// instances contributed it.
type Transaction struct {
	Items []string // sorted, unique
	Count int
}

// NewTransaction builds a transaction from items (deduplicated and sorted)
// with the given multiplicity.
func NewTransaction(items []string, count int) Transaction {
	return Transaction{Items: normalize(items), Count: count}
}

func normalize(items []string) []string {
	seen := make(map[string]bool, len(items))
	out := make([]string, 0, len(items))
	for _, it := range items {
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
		}
	}
	sort.Strings(out)
	return out
}

// Key returns a canonical string for the itemset, usable as a map key.
func Key(items []string) string { return strings.Join(normalize(items), "\x00") }

// AugmentAbsent returns a copy of tx with an absence item for every tag of
// the universe that tx does not contain. This is step 1 of the paper's
// evolution algorithm (Example 4).
func AugmentAbsent(tx Transaction, universe []string) Transaction {
	items := append([]string(nil), tx.Items...)
	has := make(map[string]bool, len(tx.Items))
	for _, it := range tx.Items {
		has[it] = true
	}
	for _, tag := range universe {
		if !has[tag] {
			items = append(items, Absent(tag))
		}
	}
	return NewTransaction(items, tx.Count)
}

// AugmentAll applies AugmentAbsent to every transaction.
func AugmentAll(txs []Transaction, universe []string) []Transaction {
	out := make([]Transaction, len(txs))
	for i, tx := range txs {
		out[i] = AugmentAbsent(tx, universe)
	}
	return out
}

// contains reports whether the sorted itemset haystack contains every item
// of the sorted itemset needle.
func contains(haystack, needle []string) bool {
	i := 0
	for _, want := range needle {
		for i < len(haystack) && haystack[i] < want {
			i++
		}
		if i >= len(haystack) || haystack[i] != want {
			return false
		}
		i++
	}
	return true
}

// Table answers support and confidence queries over a fixed set of
// transactions. It is the exact-counting backend behind the paper's
// rule-based policy conditions.
type Table struct {
	txs   []Transaction
	total int
}

// NewTable builds a query table. The total is the sum of multiplicities.
func NewTable(txs []Transaction) *Table {
	total := 0
	for _, tx := range txs {
		total += tx.Count
	}
	return &Table{txs: txs, total: total}
}

// Total returns the number of transactions (counting multiplicities).
func (t *Table) Total() int { return t.total }

// CountContaining returns how many transactions contain every given item.
func (t *Table) CountContaining(items []string) int {
	needle := normalize(items)
	n := 0
	for _, tx := range t.txs {
		if contains(tx.Items, needle) {
			n += tx.Count
		}
	}
	return n
}

// Support returns the fraction of transactions containing all items
// (Example 3 of the paper).
func (t *Table) Support(items []string) float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.CountContaining(items)) / float64(t.total)
}

// Confidence returns the confidence of the rule X → Y: the fraction of
// transactions containing X that also contain Y (Example 3).
func (t *Table) Confidence(x, y []string) float64 {
	nx := t.CountContaining(x)
	if nx == 0 {
		return 0
	}
	both := t.CountContaining(append(append([]string(nil), x...), y...))
	return float64(both) / float64(nx)
}
