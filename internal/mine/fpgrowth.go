package mine

import "sort"

// FPGrowth mines frequent itemsets with an FP-tree, avoiding candidate
// generation. It produces exactly the same result set as Apriori (experiment
// E6 measures the runtime difference).
type FPGrowth struct{}

// fpNode is a node of the FP-tree.
type fpNode struct {
	item     string
	count    int
	parent   *fpNode
	children map[string]*fpNode
	nextLink *fpNode // header-table chain of nodes with the same item
}

type fpTree struct {
	root    *fpNode
	headers map[string]*fpNode
	counts  map[string]int
}

// FrequentItemsets implements Miner.
func (FPGrowth) FrequentItemsets(txs []Transaction, minSupport float64, maxSize int) []FrequentSet {
	total := 0
	for _, tx := range txs {
		total += tx.Count
	}
	if total == 0 {
		return nil
	}
	minCount := minCountFor(minSupport, total)

	tree := buildFPTree(txs, minCount)
	var out []FrequentSet
	mineFPTree(tree, nil, minCount, maxSize, &out, total)
	sortFrequent(out)
	return out
}

func buildFPTree(txs []Transaction, minCount int) *fpTree {
	counts := make(map[string]int)
	for _, tx := range txs {
		for _, it := range tx.Items {
			counts[it] += tx.Count
		}
	}
	tree := &fpTree{
		root:    &fpNode{children: make(map[string]*fpNode)},
		headers: make(map[string]*fpNode),
		counts:  counts,
	}
	for _, tx := range txs {
		items := filterSortByFreq(tx.Items, counts, minCount)
		tree.insert(items, tx.Count)
	}
	return tree
}

// filterSortByFreq keeps frequent items, ordered by descending global count
// (ties broken lexicographically) — the canonical FP-tree insertion order.
func filterSortByFreq(items []string, counts map[string]int, minCount int) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		if counts[it] >= minCount {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

func (t *fpTree) insert(items []string, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: make(map[string]*fpNode)}
			node.children[it] = child
			child.nextLink = t.headers[it]
			t.headers[it] = child
		}
		child.count += count
		node = child
	}
}

// mineFPTree emits every frequent itemset that extends suffix.
func mineFPTree(tree *fpTree, suffix []string, minCount, maxSize int, out *[]FrequentSet, total int) {
	if maxSize != 0 && len(suffix) >= maxSize {
		return
	}
	// Deterministic order over header items.
	items := make([]string, 0, len(tree.headers))
	for it := range tree.headers {
		items = append(items, it)
	}
	sort.Strings(items)
	for _, it := range items {
		count := 0
		for node := tree.headers[it]; node != nil; node = node.nextLink {
			count += node.count
		}
		if count < minCount {
			continue
		}
		itemset := append(append([]string(nil), suffix...), it)
		sort.Strings(itemset)
		*out = append(*out, FrequentSet{
			Items:   itemset,
			Support: float64(count) / float64(total),
			Count:   count,
		})
		// Conditional pattern base for it.
		var conditional []Transaction
		for node := tree.headers[it]; node != nil; node = node.nextLink {
			var path []string
			for p := node.parent; p != nil && p.item != ""; p = p.parent {
				path = append(path, p.item)
			}
			if len(path) > 0 {
				conditional = append(conditional, NewTransaction(path, node.count))
			}
		}
		if len(conditional) == 0 {
			continue
		}
		sub := buildFPTree(conditional, minCount)
		mineFPTree(sub, itemset, minCount, maxSize, out, total)
	}
}
