package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReferenceWAL builds a multi-segment WAL and returns the payloads and
// the ordered segment paths.
func writeReferenceWAL(t *testing.T, dir string, n int) ([][]byte, []string) {
	t.Helper()
	want := payloads(n)
	appendAll(t, dir, Options{Sync: SyncOff, SegmentSize: 96}, want)
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(seqs))
	for i, seq := range seqs {
		paths[i] = filepath.Join(dir, segmentName(seq))
	}
	if len(paths) < 3 {
		t.Fatalf("want a multi-segment WAL, got %d segments", len(paths))
	}
	return want, paths
}

// cutAt reproduces dir's segment stream cut at overall byte offset n in
// dst: full earlier segments, a truncated one at the cut, nothing after —
// exactly the bytes a crash at that instant would have left durable.
func cutAt(t *testing.T, paths []string, dst string, n int64) {
	t.Helper()
	remaining := n
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if remaining <= 0 {
			return
		}
		if int64(len(data)) > remaining {
			data = data[:remaining]
		}
		remaining -= int64(len(data))
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(p)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillAtEveryByteOffset is the core durability property: for every
// possible crash point in the byte stream, recovery succeeds and yields
// exactly the records that were fully durable at the crash — never an
// error, never a partial or phantom record.
func TestKillAtEveryByteOffset(t *testing.T) {
	ref := t.TempDir()
	want, paths := writeReferenceWAL(t, ref, 24)

	// recordEnds[k] = cumulative stream offset at which record k becomes
	// fully durable.
	var recordEnds []int64
	var offset int64
	for _, p := range want {
		offset += int64(FrameHeaderSize + len(p))
		recordEnds = append(recordEnds, offset)
	}
	total := offset

	durableAt := func(cut int64) int {
		n := 0
		for _, end := range recordEnds {
			if end <= cut {
				n++
			}
		}
		return n
	}

	for cut := int64(0); cut <= total; cut++ {
		dst := t.TempDir()
		cutAt(t, paths, dst, cut)
		var got [][]byte
		res, err := Replay(dst, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: replay failed: %v", cut, err)
		}
		wantN := durableAt(cut)
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d (%+v)", cut, len(got), wantN, res)
		}
		for i := range got {
			if string(got[i]) != string(want[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, got[i], want[i])
			}
		}
		// A cut strictly inside a frame must be reported as torn.
		if wantN < len(want) && cut > 0 && (wantN == 0 || cut != recordEnds[wantN-1]) {
			if !res.Truncated && !res.Corrupted {
				t.Fatalf("cut %d: mid-frame cut not flagged (%+v)", cut, res)
			}
		}
		// Recovery is idempotent: a second replay of the repaired dir sees
		// the same clean prefix.
		if cut == total/2 {
			var again int
			res2, err := Replay(dst, func([]byte) error { again++; return nil })
			if err != nil || again != wantN || res2.Truncated || res2.Corrupted {
				t.Fatalf("cut %d: re-replay after repair: n=%d err=%v res=%+v", cut, again, err, res2)
			}
		}
	}
}

// TestByteFlipIsDetectedAndQuarantined flips every byte of the stream (one
// at a time) and checks the CRC catches it: the flipped record is never
// applied, the replayed records are a strict prefix of the originals, and
// the invalid bytes land in a quarantine file.
func TestByteFlipIsDetectedAndQuarantined(t *testing.T) {
	ref := t.TempDir()
	want, paths := writeReferenceWAL(t, ref, 12)

	var stream []byte
	var segLens []int
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, data...)
		segLens = append(segLens, len(data))
	}

	for flip := 0; flip < len(stream); flip++ {
		dst := t.TempDir()
		mut := append([]byte(nil), stream...)
		mut[flip] ^= 0x40
		off := 0
		for i, p := range paths {
			if err := os.WriteFile(filepath.Join(dst, filepath.Base(p)), mut[off:off+segLens[i]], 0o644); err != nil {
				t.Fatal(err)
			}
			off += segLens[i]
		}
		var got [][]byte
		res, err := Replay(dst, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("flip %d: replay failed: %v", flip, err)
		}
		if len(got) >= len(want) {
			t.Fatalf("flip %d: corruption not detected (%d records replayed)", flip, len(got))
		}
		for i := range got {
			if string(got[i]) != string(want[i]) {
				t.Fatalf("flip %d: corrupt record silently applied: record %d = %q, want %q", flip, i, got[i], want[i])
			}
		}
		if !res.Corrupted && !res.Truncated {
			t.Fatalf("flip %d: result not flagged: %+v", flip, res)
		}
		if len(res.Quarantined) == 0 {
			t.Fatalf("flip %d: nothing quarantined: %+v", flip, res)
		}
		for _, q := range res.Quarantined {
			if !strings.HasSuffix(q, ".quarantine") {
				t.Fatalf("flip %d: quarantine file %q", flip, q)
			}
			if _, err := os.Stat(q); err != nil {
				t.Fatalf("flip %d: quarantine file missing: %v", flip, err)
			}
		}
	}
}

// TestMidHistoryCorruptionQuarantinesLaterSegments flips a byte in an early
// segment of a multi-segment WAL: replay must stop there and quarantine the
// intact later segments rather than apply records whose preconditions are
// gone.
func TestMidHistoryCorruptionQuarantinesLaterSegments(t *testing.T) {
	dir := t.TempDir()
	writeReferenceWAL(t, dir, 18)
	seqs, _ := listSegments(dir)
	first := filepath.Join(dir, segmentName(seqs[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[FrameHeaderSize] ^= 0xFF // corrupt the first record's payload
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	res, err := Replay(dir, func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || !res.Corrupted {
		t.Fatalf("replayed %d records (%+v), want 0 and corrupted", n, res)
	}
	if len(res.Quarantined) < len(seqs) {
		t.Errorf("quarantined %d files (%v), want all %d segments' worth", len(res.Quarantined), res.Quarantined, len(seqs))
	}
	left, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range left[1:] {
		t.Errorf("segment %d still replayable after mid-history corruption", seq)
	}
}
