package wal

import (
	"bytes"
	"testing"
)

// TestAppendAllocs gates the ingest-durability budget: once the frame
// buffer has grown to the record size, Append must not allocate — the WAL
// sits on the per-document commit path, which is otherwise allocation-free
// (DESIGN.md §9).
func TestAppendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	l, err := Open(t.TempDir(), Options{Sync: SyncOff, SegmentSize: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 256)
	if err := l.Append(payload); err != nil { // warm: grows buf, opens segment
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Append allocates %.1f objects per record, want 0", allocs)
	}
}

// TestEncodeFrameAllocs checks the shared frame codec reuses its
// destination buffer.
func TestEncodeFrameAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	payload := bytes.Repeat([]byte("y"), 128)
	buf := make([]byte, 0, FrameHeaderSize+len(payload))
	allocs := testing.AllocsPerRun(100, func() {
		buf = EncodeFrame(buf[:0], payload)
	})
	if allocs != 0 {
		t.Errorf("EncodeFrame allocates %.1f objects, want 0", allocs)
	}
}

// TestAppendBatchAllocs extends the budget to group commit: journaling a
// whole group must stay allocation-free once the frame buffer has grown,
// or batching would trade fsyncs for GC pressure.
func TestAppendBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	l, err := Open(t.TempDir(), Options{Sync: SyncOff, SegmentSize: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	batch := make([][]byte, 16)
	for i := range batch {
		batch[i] = bytes.Repeat([]byte("x"), 256)
	}
	if err := l.AppendBatch(batch); err != nil { // warm: grows buf, opens segment
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := l.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendBatch allocates %.1f objects per batch, want 0", allocs)
	}
}
