// Package wal is a segmented, CRC32C-framed, append-only write-ahead log.
// The source engine journals every state-changing operation through it so
// that a crash — OOM kill, power loss, SIGKILL — loses at most the tail the
// chosen fsync policy permits, instead of every document classified since
// startup (the snapshot written at graceful shutdown was previously the
// only durability).
//
// The log is a directory of numbered segment files (wal-<seq>.log). Records
// are length-prefixed and checksummed (see frame.go); segments rotate at a
// configurable size so a background checkpointer can truncate history that
// a snapshot already covers (sealed segments below the snapshot's position
// are removed, never rewritten). Recovery (Replay) tolerates a torn final
// record by truncating to the last valid frame, and detects byte-flip
// corruption via CRC, quarantining — never applying — the invalid suffix.
//
// Failures are sticky: after the first write or sync error the log refuses
// further appends and reports the error from Err, which the serving layer
// surfaces as degraded, read-only mode.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A write-ahead log that drops a Sync/Close/Write error is not one.
// dtdvet:strict errsync
//
// The background fsync loop must be stoppable: a leaked sync goroutine
// keeps a dead Log's file handle alive past Close.
// dtdvet:strict golife

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncInterval flushes dirty segments from a background goroutine every
	// Options.SyncEvery. A crash loses at most one interval of records; the
	// append hot path never waits on the disk. This is the default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no acknowledged record is ever
	// lost, at the cost of a disk round-trip per operation.
	SyncAlways
	// SyncOff never fsyncs; the OS page cache decides. A crash of the
	// process alone loses nothing (the kernel still has the writes); a
	// crash of the machine loses the unflushed tail.
	SyncOff
)

// ParseSyncPolicy maps the flag spelling ("always", "interval", "off") to a
// SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
}

// Options configures a Log.
type Options struct {
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 4 MiB). Rotation bounds how much history a checkpoint
	// leaves behind: only sealed segments are truncated.
	SegmentSize int64
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the flush period under SyncInterval (default 100ms).
	SyncEvery time.Duration
	// FS overrides the filesystem, for fault injection (default: the real
	// one).
	FS FS
}

func (o *Options) applyDefaults() {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
}

// Stats counts what the log has done since Open, for the service's metrics
// route.
type Stats struct {
	Appends   int64 // records appended
	Bytes     int64 // framed bytes written
	Syncs     int64 // fsync calls that reached the File
	Rotations int64 // segments sealed
}

// Log is an append-only write-ahead log over a directory of segments. It is
// safe for concurrent use. dir and opts are immutable after Open and the
// counters are atomics; everything else is guarded by mu (machine-checked,
// DESIGN.md §11).
type Log struct {
	dir  string
	opts Options

	// syncMu serializes the out-of-lock fsync in Flush. It is always
	// acquired before mu and never while holding it.
	syncMu sync.Mutex

	mu         sync.Mutex
	active     File   // dtdvet:guarded_by mu
	activeSeq  uint64 // dtdvet:guarded_by mu
	activeSize int64  // dtdvet:guarded_by mu
	nextSeq    uint64 // dtdvet:guarded_by mu
	// buf is the reusable frame buffer behind zero-alloc appends.
	buf   []byte // dtdvet:guarded_by mu
	err   error  // dtdvet:guarded_by mu -- sticky first write/sync failure
	dirty bool   // dtdvet:guarded_by mu -- unsynced appends awaiting a flush
	// flushed is how many of the appended bytes a completed fsync (or a
	// segment seal, which syncs before closing) has made durable. Flush
	// skips the disk entirely when a concurrent flusher already covered the
	// caller's records.
	flushed int64 // dtdvet:guarded_by mu

	appends   atomic.Int64
	bytes     atomic.Int64
	syncs     atomic.Int64
	rotations atomic.Int64

	stopSync chan struct{} // dtdvet:guarded_by mu
	syncDone chan struct{} // dtdvet:guarded_by mu
}

// segmentName returns the file name of segment seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("wal-%016d.log", seq)
}

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the sequence numbers of the segments in dir, sorted
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// ListSegments returns the sequence numbers of the WAL segments in dir,
// sorted ascending. The replication shipper uses it to enumerate what the
// primary can serve; sealed segments are plain files and may be read
// directly, the active one only up to ActivePosition's durable offset.
func ListSegments(dir string) ([]uint64, error) {
	return listSegments(dir)
}

// SegmentFileName returns the file name of segment seq (wal-%016d.log),
// relative to the log directory.
func SegmentFileName(seq uint64) string {
	return segmentName(seq)
}

// ActivePosition reports the shipping frontier of the log: the active
// segment's sequence number, its total size, and the length of its durable
// prefix — the bytes a follower may safely replicate. Under SyncAlways
// every appended byte is durable; under SyncInterval the durable prefix
// trails the tail by at most the unflushed window (sealing a segment syncs
// it, so all unflushed bytes live in the active segment); under SyncOff
// durability is explicitly not promised and the whole segment is offered.
// ok is false when no segment is active (nothing appended since Open or the
// last Rotate).
func (l *Log) ActivePosition() (seq uint64, size, durable int64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return 0, 0, 0, false
	}
	seq, size = l.activeSeq, l.activeSize
	durable = size
	if l.opts.Sync != SyncOff {
		if lag := l.bytes.Load() - l.flushed; lag > 0 {
			durable -= lag
		}
		if durable < 0 {
			durable = 0
		}
	}
	return seq, size, durable, true
}

// Open prepares dir for appending. Existing segments are left untouched —
// recovery (Replay) reads them first — and new records go to a fresh
// segment numbered after the highest present, so a truncated tail is never
// appended into.
// dtdvet:allow locks -- constructs a fresh Log not yet shared with any goroutine
func Open(dir string, opts Options) (*Log, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	if n := len(seqs); n > 0 {
		l.nextSeq = seqs[n-1] + 1
	}
	if opts.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop(l.stopSync, l.syncDone)
	}
	return l, nil
}

// Append journals one record. The payload is framed (length + CRC32C),
// written to the active segment and synced per the policy. Append is
// zero-allocation in steady state: the frame buffer is reused across calls.
// After the first failure every Append returns the same sticky error — the
// caller must treat the log as lost and degrade, not retry.
//
// The zero-allocation claim is machine-checked (the noalloc directive);
// the fmt.Errorf sites below are all on cold failure paths, after which
// the log is dead anyway.
// dtdvet:noalloc
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if len(payload) == 0 || len(payload) > MaxRecordSize {
		return fmt.Errorf("wal: record payload size %d out of range", len(payload)) // dtdvet:allow noalloc -- cold rejection path
	}
	frameLen := int64(FrameHeaderSize + len(payload))
	if l.active == nil || (l.activeSize > 0 && l.activeSize+frameLen > l.opts.SegmentSize) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	l.buf = EncodeFrame(l.buf[:0], payload)
	if _, err := l.active.Write(l.buf); err != nil {
		l.fail(fmt.Errorf("wal: appending to segment %d: %w", l.activeSeq, err)) // dtdvet:allow noalloc -- cold error path, log is dead after
		return l.err
	}
	l.activeSize += frameLen
	l.appends.Add(1)
	l.bytes.Add(frameLen)
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.active.Sync(); err != nil {
			l.fail(fmt.Errorf("wal: syncing segment %d: %w", l.activeSeq, err)) // dtdvet:allow noalloc -- cold error path, log is dead after
			return l.err
		}
		l.syncs.Add(1)
		l.flushed = l.bytes.Load()
	case SyncInterval:
		l.dirty = true
	}
	return nil
}

// AppendBatch journals a group of records as one disk operation: a single
// mutex acquisition, every frame encoded into one reused buffer, one Write
// of the concatenated frames, and — under SyncAlways — one fsync for the
// whole group. This is the primitive behind the source's group commit
// (DESIGN.md §10): the per-record durability cost collapses from one disk
// round-trip per commit to one per group, without weakening the contract —
// AppendBatch returns only after the group is as durable as the policy
// promises for a single Append.
//
// The frames are byte-identical to len(payloads) sequential Appends, so
// recovery needs no group framing: a crash mid-batch tears the stream
// inside some frame, Replay truncates to the last whole record, and the
// recovered state is exactly the journaled prefix of the group.
//
// All payloads are validated before anything is written; a size rejection
// fails the whole batch with no partial append and no sticky failure. An
// I/O failure is sticky exactly as for Append. Like Append, AppendBatch is
// zero-allocation in steady state (the frame buffer is reused and grows to
// the largest group seen).
// dtdvet:noalloc
func (l *Log) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendBatchLocked(payloads, true)
}

// AppendBatchNoSync journals a group of records exactly like AppendBatch
// but never fsyncs inline, whatever the policy: the records are durable
// only after a later Flush (or the interval flusher, a segment seal, or
// Close). It exists for the group-commit leader, which writes the batch
// while holding the source's state lock but moves the disk round-trip
// after the release — AppendBatchNoSync under the lock, Flush outside it,
// acknowledge after Flush returns (DESIGN.md §10).
// dtdvet:noalloc
func (l *Log) AppendBatchNoSync(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendBatchLocked(payloads, false)
}

// appendBatchLocked frames and writes one batch; syncNow selects whether a
// SyncAlways policy fsyncs before returning or leaves the bytes for Flush.
// dtdvet:requires mu
// dtdvet:noalloc
func (l *Log) appendBatchLocked(payloads [][]byte, syncNow bool) error {
	if l.err != nil {
		return l.err
	}
	var batchLen int64
	for _, p := range payloads {
		if len(p) == 0 || len(p) > MaxRecordSize {
			return fmt.Errorf("wal: record payload size %d out of range", len(p)) // dtdvet:allow noalloc -- cold rejection path
		}
		batchLen += int64(FrameHeaderSize + len(p))
	}
	if l.active == nil || (l.activeSize > 0 && l.activeSize+batchLen > l.opts.SegmentSize) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	l.buf = l.buf[:0]
	for _, p := range payloads {
		l.buf = EncodeFrame(l.buf, p)
	}
	if _, err := l.active.Write(l.buf); err != nil {
		l.fail(fmt.Errorf("wal: appending %d-record batch to segment %d: %w", len(payloads), l.activeSeq, err)) // dtdvet:allow noalloc -- cold error path, log is dead after
		return l.err
	}
	l.activeSize += batchLen
	l.appends.Add(int64(len(payloads)))
	l.bytes.Add(batchLen)
	switch {
	case l.opts.Sync == SyncAlways && syncNow:
		if err := l.active.Sync(); err != nil {
			l.fail(fmt.Errorf("wal: syncing segment %d: %w", l.activeSeq, err)) // dtdvet:allow noalloc -- cold error path, log is dead after
			return l.err
		}
		l.syncs.Add(1)
		l.flushed = l.bytes.Load()
	case l.opts.Sync != SyncOff:
		l.dirty = true
	}
	return nil
}

// rotateLocked seals the active segment (sync + close) and opens the next
// one. Callers hold l.mu.
// dtdvet:requires mu
func (l *Log) rotateLocked() error {
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			l.fail(fmt.Errorf("wal: sealing segment %d: %w", l.activeSeq, err))
			return l.err
		}
		l.syncs.Add(1)
		l.flushed = l.bytes.Load()
		if err := l.active.Close(); err != nil {
			l.fail(fmt.Errorf("wal: sealing segment %d: %w", l.activeSeq, err))
			return l.err
		}
		l.active = nil
		l.dirty = false
		l.rotations.Add(1)
	}
	f, err := l.opts.FS.Create(filepath.Join(l.dir, segmentName(l.nextSeq)))
	if err != nil {
		l.fail(fmt.Errorf("wal: creating segment %d: %w", l.nextSeq, err))
		return l.err
	}
	l.active = f
	l.activeSeq = l.nextSeq
	l.activeSize = 0
	l.nextSeq++
	return nil
}

// Rotate seals the active segment and returns the sequence number of the
// next (not yet written) one: every record appended so far lives in a
// segment numbered strictly below the returned value. The checkpointer
// calls this under the source's state lock, so the snapshot it then writes
// corresponds exactly to the WAL position.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			l.fail(fmt.Errorf("wal: sealing segment %d: %w", l.activeSeq, err))
			return 0, l.err
		}
		l.syncs.Add(1)
		l.flushed = l.bytes.Load()
		if err := l.active.Close(); err != nil {
			l.fail(fmt.Errorf("wal: sealing segment %d: %w", l.activeSeq, err))
			return 0, l.err
		}
		l.active = nil
		l.dirty = false
		l.rotations.Add(1)
	}
	return l.nextSeq, nil
}

// SkipTo advances the segment numbering so the next created segment is
// numbered at least seq. Recovery calls this with the restored snapshot's
// WAL position: a checkpoint may have removed every segment below that
// position, and a fresh Open of the now-empty directory would otherwise
// restart numbering inside the covered range — records appended there would
// be skipped as "already in the snapshot" by the next recovery.
func (l *Log) SkipTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil && seq > l.nextSeq {
		l.nextSeq = seq
	}
}

// RemoveBefore deletes sealed segments with sequence numbers strictly below
// seq — history a durable snapshot already covers. The active segment is
// never removed.
func (l *Log) RemoveBefore(seq uint64) error {
	l.mu.Lock()
	activeSeq, haveActive := l.activeSeq, l.active != nil
	l.mu.Unlock()
	seqs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, s := range seqs {
		if s >= seq || (haveActive && s == activeSeq) {
			continue
		}
		if err := l.opts.FS.Remove(filepath.Join(l.dir, segmentName(s))); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: removing segment %d: %w", s, err)
		}
	}
	return firstErr
}

// Sync forces an fsync of the active segment, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// dtdvet:requires mu
func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.fail(fmt.Errorf("wal: syncing segment %d: %w", l.activeSeq, err))
		return l.err
	}
	l.syncs.Add(1)
	l.flushed = l.bytes.Load()
	l.dirty = false
	return nil
}

// Flush makes every record appended before the call durable, without
// holding the log's mutex across the disk round-trip: concurrent appends
// to the same segment proceed while the fsync is in flight. This is the
// second half of the group-commit protocol — the leader journals with
// AppendBatchNoSync under the source's state lock, releases it, then
// acknowledges after Flush returns.
//
// Only the active segment needs syncing (sealing a segment syncs it before
// closing), and if a concurrent Flush or policy fsync already covered the
// caller's records the disk is not touched at all. If the active segment is
// sealed while the fsync is in flight, the seal's own sync made the records
// durable, so the racing fsync's error (typically "file already closed") is
// ignored; a sync failure on the still-active segment is sticky, exactly as
// for Append.
func (l *Log) Flush() error {
	target := l.bytes.Load()
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.err != nil || l.active == nil || l.flushed >= target {
		err := l.err
		l.mu.Unlock()
		return err
	}
	f, seq := l.active, l.activeSeq
	// Every byte counted so far sits in a sealed (already durable) segment
	// or in f; the fsync below covers them all.
	covered := l.bytes.Load()
	l.mu.Unlock()
	syncErr := f.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if syncErr != nil {
		if l.activeSeq == seq && l.active != nil {
			l.fail(fmt.Errorf("wal: syncing segment %d: %w", seq, syncErr))
			return l.err
		}
	} else {
		l.syncs.Add(1)
	}
	if covered > l.flushed {
		l.flushed = covered
	}
	if l.activeSeq == seq && l.bytes.Load() == covered {
		l.dirty = false
	}
	return l.err
}

// syncLoop is the SyncInterval background flusher.
func (l *Log) syncLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(l.opts.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.mu.Lock()
			if l.dirty && l.err == nil {
				_ = l.syncLocked() // failure is sticky; Err surfaces it
			}
			l.mu.Unlock()
		case <-stop:
			return
		}
	}
}

// fail records the first failure; the log is unusable afterwards. Callers
// hold l.mu.
// dtdvet:requires mu
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
}

// Err returns the sticky failure, or nil while the log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns operation counters since Open.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:   l.appends.Load(),
		Bytes:     l.bytes.Load(),
		Syncs:     l.syncs.Load(),
		Rotations: l.rotations.Load(),
	}
}

// Dir returns the segment directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the fsync policy the log was opened with.
func (l *Log) Policy() SyncPolicy { return l.opts.Sync }

// Close flushes and closes the active segment and stops the background
// flusher. The log must not be used afterwards. Close is idempotent and
// safe to race with itself: the flusher channels are claimed under mu, so
// exactly one caller stops the sync loop (the unguarded access here was
// dtdvet's first real finding).
func (l *Log) Close() error {
	l.mu.Lock()
	stop, done := l.stopSync, l.syncDone
	l.stopSync, l.syncDone = nil, nil
	l.mu.Unlock()
	if stop != nil {
		// Stop the flusher without holding mu: its current tick needs the
		// lock to finish, and we wait for it.
		close(stop)
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return l.err
	}
	syncErr := l.syncLocked()
	if err := l.active.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	l.active = nil
	return syncErr
}
