package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ReplayResult describes what recovery found in the log.
type ReplayResult struct {
	// Records is the number of valid records handed to the apply function.
	Records int
	// Truncated reports that the final segment ended inside a frame — the
	// torn write of a crash mid-append — and was truncated back to its last
	// valid frame boundary.
	Truncated bool
	// Corrupted reports that a structurally complete frame failed its CRC
	// (or carried an impossible length): bit rot or a flipped byte. The
	// invalid suffix was quarantined, never applied.
	Corrupted bool
	// Quarantined lists files holding bytes that were removed from the
	// replayable log: the invalid suffix of the offending segment, plus any
	// whole segments after it (their records depend on state the corrupt
	// record would have produced, so applying them could diverge).
	Quarantined []string
}

// Replay is ReplayFrom over the whole directory.
// dtdvet:replayroot
func Replay(dir string, apply func(payload []byte) error) (ReplayResult, error) {
	return ReplayFrom(dir, 0, apply)
}

// ReplayFrom reads every record of every segment numbered >= minSeq, in
// order, calling apply on each payload. minSeq is the WAL position a
// restored snapshot covers: records below it are already folded into the
// snapshot and must not be applied twice. The payload slice passed to
// apply is reused between records and only valid for the duration of the
// call.
//
// Recovery is total: a torn final record is truncated away (its bytes were
// never acknowledged as durable), and a corrupt record stops the replay
// with everything from it onward quarantined to *.quarantine files. In
// both cases ReplayFrom returns a nil error and the state rebuilt from the
// longest valid prefix; an apply error or an I/O failure is returned as an
// error.
// dtdvet:replayroot
func ReplayFrom(dir string, minSeq uint64, apply func(payload []byte) error) (ReplayResult, error) {
	var res ReplayResult
	seqs, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	var buf []byte
	for i, seq := range seqs {
		if seq < minSeq {
			continue
		}
		path := filepath.Join(dir, segmentName(seq))
		stop, err := replaySegment(path, &res, &buf, apply)
		if err != nil {
			return res, err
		}
		if stop {
			// Quarantine the untouched later segments: their records were
			// journaled against state we can no longer reach.
			for _, later := range seqs[i+1:] {
				p := filepath.Join(dir, segmentName(later))
				q := p + ".quarantine"
				if err := os.Rename(p, q); err != nil {
					return res, fmt.Errorf("wal: quarantining %s: %w", p, err)
				}
				res.Quarantined = append(res.Quarantined, q)
			}
			return res, nil
		}
	}
	return res, nil
}

// replaySegment replays one segment file. It reports stop=true when an
// invalid frame ended the replayable prefix (the segment was truncated and
// the suffix quarantined).
func replaySegment(path string, res *ReplayResult, buf *[]byte, apply func(payload []byte) error) (stop bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close() // dtdvet:allow errsync -- read-only replay handle; nothing to flush
	r := bufio.NewReader(f)
	var validEnd int64
	for {
		payload, err := ReadFrame(r, *buf)
		if errors.Is(err, io.EOF) {
			return false, nil
		}
		if err != nil {
			torn := errors.Is(err, ErrTorn)
			if qerr := quarantineTail(path, validEnd, res); qerr != nil {
				return false, qerr
			}
			if torn {
				res.Truncated = true
			} else {
				res.Corrupted = true
			}
			return true, nil
		}
		if cap(payload) > cap(*buf) {
			*buf = payload[:0]
		}
		if err := apply(payload); err != nil {
			return false, fmt.Errorf("wal: applying record %d: %w", res.Records, err)
		}
		res.Records++
		validEnd += int64(FrameHeaderSize + len(payload))
	}
}

// quarantineTail copies the bytes of path beyond validEnd to a .quarantine
// file and truncates the segment back to its last valid frame boundary, so
// the invalid bytes are preserved for forensics but can never replay.
func quarantineTail(path string, validEnd int64, res *ReplayResult) (err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: quarantining %s: %w", path, err)
	}
	// The handle is read-write and the truncate must stick: a Close error
	// here is a durability signal, not teardown noise.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("wal: closing %s after truncate: %w", path, cerr)
		}
	}()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: quarantining %s: %w", path, err)
	}
	if info.Size() > validEnd {
		if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
			return fmt.Errorf("wal: quarantining %s: %w", path, err)
		}
		tail, err := io.ReadAll(f)
		if err != nil {
			return fmt.Errorf("wal: quarantining %s: %w", path, err)
		}
		q := path + ".quarantine"
		if err := os.WriteFile(q, tail, 0o644); err != nil {
			return fmt.Errorf("wal: quarantining %s: %w", path, err)
		}
		res.Quarantined = append(res.Quarantined, q)
	}
	if err := f.Truncate(validEnd); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", path, err)
	}
	return f.Sync()
}
