// Package faultfs is a fault-injecting filesystem for crash-safety tests.
// It wraps the real filesystem behind wal.FS and cuts the power at a
// chosen point: after a configurable number of bytes every write fails (and
// only a prefix of the in-flight write reaches the disk — the torn write of
// a real crash), or syncs start lying, or every operation errors. Tests
// point a wal.Log (or a docstore) at it, kill it mid-append, and then
// recover from whatever actually hit the disk.
package faultfs

import (
	"errors"
	"os"
	"sync"

	"dtdevolve/internal/wal"
)

// ErrInjected is the error returned by every injected failure.
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps the real filesystem with programmable failures. The zero value
// injects nothing. FS is safe for concurrent use.
type FS struct {
	mu sync.Mutex
	// remaining is how many more payload bytes may be written before writes
	// start failing; -1 means unlimited.
	remaining int64
	limited   bool
	failSync  bool
	failOps   bool
	written   int64
}

// New returns an FS with no faults armed.
func New() *FS { return &FS{} }

// FailWritesAfter arms the write fault: after n more bytes, every Write
// fails with ErrInjected. The write that crosses the boundary is torn — the
// bytes up to the boundary reach the file, the rest do not — exactly like a
// crash mid-append.
func (fs *FS) FailWritesAfter(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.remaining = n
	fs.limited = true
}

// FailSyncs makes every subsequent Sync fail with ErrInjected.
func (fs *FS) FailSyncs() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failSync = true
}

// FailOps makes every subsequent filesystem operation (Create, Remove)
// fail with ErrInjected.
func (fs *FS) FailOps() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failOps = true
}

// Heal disarms every fault.
func (fs *FS) Heal() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.limited = false
	fs.remaining = 0
	fs.failSync = false
	fs.failOps = false
}

// Written returns how many bytes reached the underlying files.
func (fs *FS) Written() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.written
}

// Create implements wal.FS.
func (fs *FS) Create(path string) (wal.File, error) {
	fs.mu.Lock()
	bad := fs.failOps
	fs.mu.Unlock()
	if bad {
		return nil, ErrInjected
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, f: f}, nil
}

// Remove implements wal.FS.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	bad := fs.failOps
	fs.mu.Unlock()
	if bad {
		return ErrInjected
	}
	return os.Remove(path)
}

// file is a wal.File that consults the FS's armed faults on every
// operation.
type file struct {
	fs *FS
	f  *os.File
}

// Write writes p, tearing it at the armed byte budget: the allowed prefix
// reaches the disk, then ErrInjected.
func (w *file) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	allowed := len(p)
	if w.fs.limited {
		if int64(allowed) > w.fs.remaining {
			allowed = int(w.fs.remaining)
		}
		w.fs.remaining -= int64(allowed)
	}
	w.fs.mu.Unlock()
	n := 0
	if allowed > 0 {
		var err error
		n, err = w.f.Write(p[:allowed])
		w.fs.mu.Lock()
		w.fs.written += int64(n)
		w.fs.mu.Unlock()
		if err != nil {
			return n, err
		}
	}
	if allowed < len(p) {
		return n, ErrInjected
	}
	return n, nil
}

func (w *file) Sync() error {
	w.fs.mu.Lock()
	bad := w.fs.failSync
	w.fs.mu.Unlock()
	if bad {
		return ErrInjected
	}
	return w.f.Sync()
}

func (w *file) Close() error { return w.f.Close() }
