package faultfs_test

import (
	"errors"
	"fmt"
	"testing"

	"dtdevolve/internal/wal"
	"dtdevolve/internal/wal/faultfs"
)

func records(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(rune('a'+i%26))))
	}
	return out
}

// TestInjectedWriteFailureIsSticky kills the disk mid-append and checks the
// log fails loudly and permanently, while everything durably written before
// the fault still replays.
func TestInjectedWriteFailureIsSticky(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	want := records(20)
	var okRecords int
	var failed bool
	fs.FailWritesAfter(130) // tears an append partway through
	for _, p := range want {
		if err := l.Append(p); err != nil {
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("append error = %v, want injected fault", err)
			}
			failed = true
			break
		}
		okRecords++
	}
	if !failed {
		t.Fatal("write fault never fired")
	}
	if l.Err() == nil {
		t.Fatal("Err() = nil after write failure")
	}
	if err := l.Append([]byte("more")); err == nil {
		t.Fatal("append after failure succeeded; sticky error expected")
	}
	l.Close()

	var got [][]byte
	res, err := wal.Replay(dir, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay after fault: %v", err)
	}
	if len(got) != okRecords {
		t.Fatalf("recovered %d records, want %d (%+v)", len(got), okRecords, res)
	}
	for i := range got {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if !res.Truncated {
		t.Errorf("torn append not reported: %+v", res)
	}
}

// TestInjectedSyncFailure checks that a lying fsync poisons the log under
// SyncAlways.
func TestInjectedSyncFailure(t *testing.T) {
	fs := faultfs.New()
	l, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("fine")); err != nil {
		t.Fatal(err)
	}
	fs.FailSyncs()
	if err := l.Append([]byte("doomed")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append = %v, want injected sync fault", err)
	}
	if l.Err() == nil {
		t.Error("Err() = nil after sync failure")
	}
	l.Close()
}

// TestHealRestoresWrites checks faults can be disarmed (used by stress
// tests that crash and then keep the process running).
func TestHealRestoresWrites(t *testing.T) {
	fs := faultfs.New()
	f, err := fs.Create(t.TempDir() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fs.FailWritesAfter(0)
	if _, err := f.Write([]byte("nope")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("write = %v, want injected", err)
	}
	fs.Heal()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if fs.Written() != 2 {
		t.Errorf("Written() = %d, want 2", fs.Written())
	}
}
