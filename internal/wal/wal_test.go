package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendAll journals the payloads and closes the log.
func appendAll(t *testing.T, dir string, opts Options, payloads [][]byte) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// collect replays dir and returns the payload copies.
func collect(t *testing.T, dir string) ([][]byte, ReplayResult) {
	t.Helper()
	var out [][]byte
	res, err := Replay(dir, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out, res
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(rune('a'+i%26))))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := payloads(25)
	appendAll(t, dir, Options{Sync: SyncOff}, want)
	got, res := collect(t, dir)
	if res.Truncated || res.Corrupted || res.Records != len(want) {
		t.Fatalf("result = %+v", res)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	appendAll(t, dir, Options{Sync: SyncOff, SegmentSize: 64}, payloads(10))
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("expected several segments, got %v", seqs)
	}
	// Re-open appends into a fresh segment after the highest existing one.
	appendAll(t, dir, Options{Sync: SyncOff, SegmentSize: 64}, payloads(4))
	got, res := collect(t, dir)
	if res.Records != 14 || len(got) != 14 {
		t.Fatalf("after reopen: %+v, %d records", res, len(got))
	}
}

func TestRotateAndRemoveBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(5) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	keep, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("after-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveBefore(keep); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the post-rotation record survives; ReplayFrom(keep) sees it too.
	got, res := collect(t, dir)
	if len(got) != 1 || string(got[0]) != "after-checkpoint" {
		t.Fatalf("after truncation: %+v %q", res, got)
	}
	var n int
	if _, err := ReplayFrom(dir, keep, func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("ReplayFrom(keep) = %d records, want 1", n)
	}
}

func TestReplayFromSkipsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(3) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	keep, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(2) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Old segments still on disk (crash between snapshot and truncate):
	// ReplayFrom must skip them rather than double-apply.
	var n int
	if _, err := ReplayFrom(dir, keep, func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("replayed %d records, want 2 (covered segments must be skipped)", n)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncOff, SyncInterval, SyncAlways} {
		dir := t.TempDir()
		appendAll(t, dir, Options{Sync: policy, SyncEvery: time.Millisecond}, payloads(8))
		if got, res := collect(t, dir); len(got) != 8 || res.Records != 8 {
			t.Errorf("policy %v: %d records (%+v)", policy, len(got), res)
		}
	}
	if _, err := ParseSyncPolicy("nope"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff, "": SyncInterval} {
		if got, err := ParseSyncPolicy(s); err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
}

func TestEmptyAndOversizedPayloadRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := l.Err(); err != nil {
		t.Errorf("size rejection must not poison the log: %v", err)
	}
	if err := l.Append([]byte("ok")); err != nil {
		t.Errorf("append after rejection: %v", err)
	}
}

func TestZeroFilledTailIsNotReplayed(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, Options{Sync: SyncOff}, payloads(3))
	seqs, _ := listSegments(dir)
	path := filepath.Join(dir, segmentName(seqs[len(seqs)-1]))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A preallocated-but-unwritten page: zeros would frame as an endless
	// run of empty records if length 0 were legal.
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, res := collect(t, dir)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if !res.Corrupted && !res.Truncated {
		t.Errorf("zero tail not flagged: %+v", res)
	}
}

func TestStats(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(4) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != 4 || st.Syncs < 4 || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// batchAll journals the payloads as a single AppendBatch and closes the log.
func batchAll(t *testing.T, dir string, opts Options, payloads [][]byte) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(payloads); err != nil {
		t.Fatalf("append batch: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := payloads(25)
	batchAll(t, dir, Options{Sync: SyncOff}, want)
	got, res := collect(t, dir)
	if res.Truncated || res.Corrupted || res.Records != len(want) {
		t.Fatalf("result = %+v", res)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestAppendBatchMatchesSequentialAppends pins the framing invariant the
// recovery path relies on: a batch leaves the exact byte stream sequential
// Appends would, so crash recovery needs no group-aware decoding — a torn
// batch truncates to a record boundary like any torn tail.
func TestAppendBatchMatchesSequentialAppends(t *testing.T) {
	recs := payloads(9)
	seqDir, batchDir := t.TempDir(), t.TempDir()
	appendAll(t, seqDir, Options{Sync: SyncOff}, recs)
	batchAll(t, batchDir, Options{Sync: SyncOff}, recs)
	seqs, err := listSegments(seqDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		a, err := os.ReadFile(filepath.Join(seqDir, segmentName(seq)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(batchDir, segmentName(seq)))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("segment %d differs between sequential and batched appends", seq)
		}
	}
}

func TestAppendBatchRotatesBetweenBatches(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.AppendBatch(payloads(3)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Error("no rotations despite batches exceeding the segment size")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, dir); len(got) != 12 {
		t.Errorf("replayed %d records, want 12", len(got))
	}
}

func TestAppendBatchRejectsBadPayloadAtomically(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendBatch([][]byte{[]byte("ok-1"), nil, []byte("ok-2")}); err == nil {
		t.Error("batch containing an empty payload accepted")
	}
	if err := l.Err(); err != nil {
		t.Errorf("size rejection must not poison the log: %v", err)
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Errorf("empty batch must be a no-op, got %v", err)
	}
	if err := l.AppendBatch([][]byte{[]byte("after")}); err != nil {
		t.Fatal(err)
	}
	// The rejected batch must leave no partial frames behind.
	got, res := collect(t, dir)
	if res.Corrupted || len(got) != 1 || string(got[0]) != "after" {
		t.Errorf("replay after rejected batch = %q (%+v), want just [after]", got, res)
	}
}

func TestAppendBatchStats(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	syncs0 := l.Stats().Syncs
	if err := l.AppendBatch(payloads(6)); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 6 {
		t.Errorf("appends = %d, want 6 (one per record)", st.Appends)
	}
	if got := st.Syncs - syncs0; got != 1 {
		t.Errorf("syncs = %d for one batch, want exactly 1", got)
	}
}

// TestAppendBatchNoSyncFlush pins the split-commit contract the group
// committer relies on: AppendBatchNoSync leaves the records unsynced even
// under SyncAlways, one Flush makes them durable with exactly one fsync,
// a redundant Flush does not touch the disk, and the replayed stream is
// identical to a plain AppendBatch.
func TestAppendBatchNoSyncFlush(t *testing.T) {
	dir := t.TempDir()
	want := payloads(6)
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatchNoSync(want); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != 0 {
		t.Errorf("syncs = %d after AppendBatchNoSync, want 0 (the fsync is the caller's Flush)", got)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != 1 {
		t.Errorf("syncs = %d after Flush, want exactly 1 for the whole batch", got)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != 1 {
		t.Errorf("syncs = %d after a redundant Flush, want still 1 (already durable)", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, dir)
	if res.Truncated || res.Corrupted || res.Records != len(want) {
		t.Fatalf("result = %+v", res)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// syncFaultFS is a minimal in-package fault filesystem (the full one,
// package faultfs, imports this package and cannot be used here): Sync on
// every created file fails once armed.
type syncFaultFS struct{ failSync bool }

func (fs *syncFaultFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &syncFaultFile{fs: fs, f: f}, nil
}

func (fs *syncFaultFS) Remove(path string) error { return os.Remove(path) }

type syncFaultFile struct {
	fs *syncFaultFS
	f  *os.File
}

func (w *syncFaultFile) Write(p []byte) (int, error) { return w.f.Write(p) }
func (w *syncFaultFile) Close() error                { return w.f.Close() }
func (w *syncFaultFile) Sync() error {
	if w.fs.failSync {
		return fmt.Errorf("injected sync fault")
	}
	return w.f.Sync()
}

// TestFlushFailureIsSticky pins Flush's failure contract: a sync fault on
// the still-active segment poisons the log exactly as an in-line sync
// failure would, so a group leader that defers the fsync cannot ack a group
// the disk never confirmed.
func TestFlushFailureIsSticky(t *testing.T) {
	fs := &syncFaultFS{}
	l, err := Open(t.TempDir(), Options{Sync: SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendBatchNoSync(payloads(3)); err != nil {
		t.Fatal(err)
	}
	fs.failSync = true
	if err := l.Flush(); err == nil {
		t.Fatal("Flush succeeded despite an injected sync fault")
	}
	fs.failSync = false
	if err := l.Append([]byte("more")); err == nil {
		t.Error("Append succeeded after a Flush failure; want the sticky error")
	}
	if l.Err() == nil {
		t.Error("Err() = nil after a Flush failure")
	}
}
