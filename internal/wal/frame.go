package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// Frame layout: every record on disk is
//
//	[4 bytes payload length, little-endian]
//	[4 bytes CRC32C of the payload, little-endian]
//	[payload bytes]
//
// A zero-length frame is invalid by construction (journaled operations are
// never empty), which keeps a zero-filled tail — a preallocated or partially
// synced page — from replaying as an endless stream of empty records:
// length 0 + CRC 0 would otherwise checksum correctly.
const (
	// FrameHeaderSize is the fixed per-record framing overhead (length +
	// CRC32C). Exported for readers that track byte offsets across frames
	// (the docstore's segment loader, fault-injection harnesses).
	FrameHeaderSize = 8
	// MaxRecordSize bounds a single record's payload. A declared length
	// beyond it is treated as frame corruption, not an allocation request.
	MaxRecordSize = 64 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), shared by the WAL and the docstore's record framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of the payload.
// dtdvet:noalloc
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// EncodeFrame appends the framed payload (header + payload) to dst and
// returns the extended slice. It allocates only when dst lacks capacity, so
// a reused buffer makes steady-state framing allocation-free.
// dtdvet:noalloc
func EncodeFrame(dst, payload []byte) []byte {
	var header [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], Checksum(payload))
	dst = append(dst, header[:]...)
	return append(dst, payload...)
}

// Frame-scan errors. ErrTorn means the stream ended inside a frame (the
// classic torn write: the process died mid-append); ErrCorrupt means a
// complete frame was present but its CRC or length field is wrong (bit rot,
// a flipped byte, or garbage). Readers recover from ErrTorn by truncating
// to the last valid frame; ErrCorrupt additionally means the invalid bytes
// must be quarantined, never applied.
var (
	ErrTorn    = errors.New("wal: torn frame (stream ends mid-record)")
	ErrCorrupt = errors.New("wal: corrupt frame (checksum mismatch)")
)

// ReadFrame reads one frame from r, reusing buf for the payload when it has
// capacity. It returns the payload, or io.EOF at a clean frame boundary,
// ErrTorn when the stream ends inside a frame, or ErrCorrupt when the frame
// is structurally invalid (zero/oversized length, CRC mismatch).
func ReadFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var header [FrameHeaderSize]byte
	n, err := io.ReadFull(r, header[:])
	if n == 0 && errors.Is(err, io.EOF) {
		return nil, io.EOF
	}
	if err != nil {
		return nil, ErrTorn // partial header
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	if length == 0 || length > MaxRecordSize {
		return nil, ErrCorrupt
	}
	if cap(buf) < int(length) {
		buf = make([]byte, length)
	}
	buf = buf[:length]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, ErrTorn // partial payload
	}
	if Checksum(buf) != binary.LittleEndian.Uint32(header[4:8]) {
		return nil, ErrCorrupt
	}
	return buf, nil
}
