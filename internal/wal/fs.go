package wal

import (
	"io"
	"os"
)

// File is the writable handle the log appends to. It is the only surface a
// fault-injection filesystem needs to intercept: every durability bug is a
// write that half-happened or a sync that lied.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the segment directory so tests can inject write and sync
// failures (package faultfs). The log only ever creates fresh segment files
// and removes sealed ones; reading is recovery's job and goes through the
// real filesystem.
type FS interface {
	// Create creates (truncating) the file at path for appending.
	Create(path string) (File, error)
	// Remove deletes the file at path.
	Remove(path string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Remove(path string) error { return os.Remove(path) }
