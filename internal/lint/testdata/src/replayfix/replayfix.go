// Package replayfix exercises the replaydet analyzer: code reachable
// (same-package call graph) from a dtdvet:replayroot entry point must be
// deterministic — no clock, no randomness, no map-order iteration.
package replayfix

import (
	"math/rand"
	"sort"
	"time"
)

type store struct {
	entries map[string]int
	log     []string
}

// Apply is the replay entry point: everything it reaches is swept.
// dtdvet:replayroot
func (s *store) Apply(payload string) {
	s.stamp()
	s.emit()
	s.emitSorted()
}

// stamp is only reachable from Apply; its clock read is flagged there.
func (s *store) stamp() {
	_ = time.Now() // want `call to time\.Now in replay-reachable code \(stamp is reachable from dtdvet:replayroot Apply\)`
}

func (s *store) emit() {
	for k := range s.entries { // want `map iteration in replay-reachable code`
		s.log = append(s.log, k)
	}
	delay := rand.Int() // want `call to math/rand\.Int in replay-reachable code`
	_ = time.Duration(delay)
}

// emitSorted is the sanctioned shape: the range order cannot escape
// because the keys are sorted before use.
func (s *store) emitSorted() {
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries { // dtdvet:allow replaydet -- keys sorted below before any emission
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.log = append(s.log, keys...)
}

// ReplayStream mirrors the streaming apply path: the replay entry point
// may read the clock for latency metrics — never journaled, never fed
// back into replayed state — under a line allow naming that contract.
// dtdvet:replayroot
func (s *store) ReplayStream(payload string) {
	start := time.Now() // dtdvet:allow replaydet -- fixture: wall clock feeds phase metrics only; never journaled or replayed
	s.log = append(s.log, payload)
	_ = time.Since(start) // dtdvet:allow replaydet -- fixture: metrics only
}

// tick is NOT reachable from any replayroot: the clock is fine here.
func (s *store) tick() time.Time {
	for k := range s.entries {
		_ = k
	}
	return time.Now()
}
