// Package directivefix exercises the directive analyzer: a dtdvet
// comment that does not parse, resolve, or attach is itself a build
// failure.
package directivefix

import "sync"

type S struct {
	mu   sync.Mutex
	data int // dtdvet:guarded_by speed // want `malformed dtdvet directive: guarded_by names speed, which is not a sync\.Mutex or sync\.RWMutex field of S`
}

// dtdvet:bogus x // want `malformed dtdvet directive: unknown directive verb "bogus"`
func unknownVerb() {}

// dtdvet:requires // want `malformed dtdvet directive: want a single lock reference`
func missingArg() {}

// dtdvet:requires T.mu // want `malformed dtdvet directive: requires references unknown type T`
func unknownType() {}

// dtdvet:requires speed // want `malformed dtdvet directive: requires names S\.speed, which is not a sync\.Mutex or sync\.RWMutex field`
func (s *S) unknownField() {}

// dtdvet:nojournal // want `malformed dtdvet directive: missing reason: dtdvet:nojournal`
func noReason() {}

// dtdvet:allow spellcheck -- because // want `malformed dtdvet directive: want a single analyzer name`
func badAnalyzer() {}

// dtdvet:guarded_by mu // want `malformed dtdvet directive: directive dtdvet:guarded_by cannot annotate a function`
func wrongTarget() {}

// dtdvet:noalloc // want `malformed dtdvet directive: directive dtdvet:noalloc cannot annotate a type`
type T2 struct{}

func floating() {
	// dtdvet:requires mu // want `malformed dtdvet directive: directive dtdvet:requires must be attached to a declaration`
	_ = 1
}

// dtdvet:replayroot // want `malformed dtdvet directive: directive dtdvet:replayroot cannot annotate a type`
type T3 struct{}

// dtdvet:retry // want `malformed dtdvet directive: directive dtdvet:retry cannot annotate a function`
func wrongRetryTarget() {}

// Valid directives produce no diagnostics.
// dtdvet:requires mu
func (s *S) okLocked() { s.data++ }

// dtdvet:strict errsync
