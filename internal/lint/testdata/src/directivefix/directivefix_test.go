package directivefix

// A directive in a test file looks load-bearing and does nothing; the
// directive analyzer says so.

// dtdvet:noalloc // want `dtdvet directive in a test file has no effect \(test files are not analyzed\)`
func helper() {}

var _ = helper
