// Package journalfix exercises the journal analyzer: exported methods of
// a journaled type must append to the journal before mutating guarded
// state.
package journalfix

import "sync"

// Store is the fixture's durable type.
// dtdvet:journaled
type Store struct {
	mu sync.RWMutex

	state map[string]string // dtdvet:guarded_by mu
	gen   int               // dtdvet:guarded_by mu
	log   []string          // dtdvet:guarded_by mu
}

// journal is the fixture's WAL append point.
// dtdvet:requires mu
// dtdvet:journalpoint
func (s *Store) journal(rec string) {
	s.log = append(s.log, rec)
}

// applyDirty mutates without journaling; only exported callers are held
// to the journal-first rule, so the finding lands at their call site.
// dtdvet:requires mu
func (s *Store) applyDirty(k, v string) {
	s.state[k] = v
}

// Set journals first: compliant.
func (s *Store) Set(k, v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal("set " + k)
	s.state[k] = v
}

func (s *Store) SetDirty(k, v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state[k] = v // want `exported method Store\.SetDirty mutates journaled state \(write to state\) before any journal append`
	s.journal("set " + k)
}

func (s *Store) Rename(from, to string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyDirty(to, s.state[from]) // want `exported method Store\.Rename mutates journaled state \(via applyDirty\) before any journal append`
	s.journal("rename " + from)
}

func (s *Store) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++ // want `exported method Store\.Bump mutates journaled state \(write to gen\) before any journal append`
	s.journal("bump")
}

// Get only reads; no journal record is owed.
func (s *Store) Get(k string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.state[k]
}

// Reset is exempt, with the reason in the source.
// dtdvet:nojournal -- fixture: state is rebuilt from the checkpoint on recovery
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = map[string]string{}
}

// dtdvet:allow journal -- fixture: migration shim, the caller journals
func (s *Store) ForceSet(k, v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state[k] = v
}
