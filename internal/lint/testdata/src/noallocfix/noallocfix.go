// Package noallocfix exercises the noalloc analyzer: functions marked
// dtdvet:noalloc must contain no obviously-allocating construct.
package noallocfix

import "fmt"

type pair struct{ a, b int }

func sink(v interface{}) { _ = v }

// hot is the discipline done right: append into a caller-owned buffer,
// value structs, arrays, constant-folded strings.
// dtdvet:noalloc
func hot(buf []byte, n int) []byte {
	p := pair{a: n, b: n}
	var arr [4]int
	arr[0] = p.b
	const prefix = "rec:"
	_ = prefix + "v1"
	return append(buf, byte(p.a+arr[0]))
}

// dtdvet:noalloc
func bad(n int, s string, b []byte) {
	m := map[string]int{} // want `map literal allocates in a dtdvet:noalloc function`
	_ = m
	sl := []int{1, 2} // want `slice literal allocates`
	_ = sl
	p := &pair{} // want `&composite literal escapes to the heap`
	_ = p
	f := func() {} // want `function literal allocates its closure`
	f()
	go f()                // want `go statement allocates a goroutine`
	bb := make([]byte, n) // want `make allocates`
	_ = bb
	ip := new(int) // want `new allocates`
	_ = ip
	_ = string(b)            // want `conversion from \[\]byte to string allocates`
	_ = []byte(s)            // want `conversion from string to \[\]byte allocates`
	_ = interface{}(n)       // want `conversion to interface type`
	_ = fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates`
	_ = s + "!"              // want `non-constant string concatenation allocates`
	sink(n)                  // want `passing int as interface`
}

// coldPath shows the sanctioned escape hatch for error paths.
// dtdvet:noalloc
func coldPath(buf []byte, err error) error {
	if err != nil {
		return fmt.Errorf("append: %w", err) // dtdvet:allow noalloc -- fixture: cold error path
	}
	_ = buf
	return nil
}

// mapLookup shows the streaming recorder's key pattern: the analyzer is
// syntactic and flags every []byte→string conversion, including the two
// shapes the compiler compiles without a copy — map indexing and string
// comparison — so those carry the sanctioned line allow.
// dtdvet:noalloc
func mapLookup(m map[string]int, key []byte, other []byte) int {
	if string(key) == string(other) { // dtdvet:allow noalloc -- fixture: string(b)==string(b) comparison does not allocate
		return -1
	}
	_ = string(key)       // want `conversion from \[\]byte to string allocates`
	return m[string(key)] // dtdvet:allow noalloc -- fixture: map-index string(b) is the compiler's no-copy special case
}

// unannotated functions may allocate freely.
func unannotated() []int {
	return []int{1, 2, 3}
}

var _ = hot
var _ = bad
var _ = coldPath
var _ = mapLookup
