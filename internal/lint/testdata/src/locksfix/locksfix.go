// Package locksfix exercises the locks analyzer: guarded-field access,
// requires-annotated calls, Lock/Unlock pairing, and the *Locked naming
// convention. Lines marked want are findings; everything else is the
// discipline done right.
package locksfix

import "sync"

type S struct {
	mu sync.RWMutex

	data map[string]int // dtdvet:guarded_by mu
	gen  int            // dtdvet:guarded_by mu
}

type plain struct {
	mu sync.Mutex
	n  int // dtdvet:guarded_by mu
}

// dtdvet:requires mu
func (s *S) bumpLocked() {
	s.gen++
	s.data["x"] = s.gen
}

// dtdvet:requires mu:r
func (s *S) sizeLocked() int {
	return len(s.data)
}

// Correct two-phase use: read side for reads, write side for writes.
func (s *S) Good() int {
	s.mu.RLock()
	n := s.sizeLocked()
	g := s.gen
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
	s.data["y"] = n
	return g + s.gen
}

func (s *S) ReadWithoutLock() int {
	return s.gen // want `S\.gen is read without S\.mu held \(dtdvet:guarded_by\)`
}

func (s *S) WriteWithoutLock() {
	s.gen = 1 // want `S\.gen is written without S\.mu held`
}

func (s *S) WriteUnderReadLock() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.data["k"] = 1 // want `S\.data is written while only the read side of S\.mu is held`
}

func (s *S) CallWithoutLock() {
	s.bumpLocked() // want `call to bumpLocked requires S\.mu held`
}

func (s *S) CallNeedsWriteSide() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.bumpLocked() // want `call to bumpLocked requires the write side of S\.mu, but only the read lock is held`
}

func (s *S) EarlyReturnLeak(cond bool) {
	s.mu.Lock()
	if cond {
		return // want `return while S\.mu is held with no deferred unlock on this path`
	}
	s.mu.Unlock()
}

// Manual pairing with an early return inside the branch is fine when the
// branch releases before returning (the checkpoint dance).
func (s *S) ManualDance(cond bool) {
	s.mu.Lock()
	if cond {
		s.gen++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func (s *S) UnlockNotHeld() {
	s.mu.Unlock() // want `S\.mu\.Unlock with the lock not held on this path`
}

func (s *S) DoubleLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `S\.mu\.Lock while S\.mu is already held on this path \(possible deadlock\)`
}

func (s *S) DeferUnlockNotHeld() {
	defer s.mu.Unlock() // want `deferred S\.mu\.Unlock with the lock not held`
}

func (s *S) DeferAcquires() {
	defer s.mu.Lock() // want `deferred S\.mu\.Lock acquires a lock at function exit`
}

func (s *S) GoNeedsLock() {
	go s.bumpLocked() // want `bumpLocked requires S\.mu, but a new goroutine starts with no locks held`
}

// A closure body starts with no locks assumed held: taking them inside is
// fine, relying on the caller's is not.
func (s *S) ClosureDiscipline() func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int {
		return s.gen // want `S\.gen is read without S\.mu held`
	}
}

// Branch lock state does not escape: the if-arm's Lock is not held after.
func (s *S) BranchDoesNotEscape(cond bool) {
	if cond {
		s.mu.Lock()
		s.gen++
		s.mu.Unlock()
	}
	s.gen++ // want `S\.gen is written without S\.mu held`
}

func (s *S) AddressEscapes() *int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return &s.gen // want `S\.gen is written while only the read side of S\.mu is held`
}

// naming convention: *Locked without a requires directive is a finding.
func (s *S) renameLocked() { // want `renameLocked follows the \*Locked naming convention but has no dtdvet:requires directive`
}

// dtdvet:allow locks -- fixture: fresh value, not yet shared
func (s *S) SuppressedWholeFunc() {
	s.gen = 7
}

func (s *S) SuppressedLine() {
	s.gen = 8 // dtdvet:allow locks -- fixture: benign by construction
	s.gen = 9 // want `S\.gen is written without S\.mu held`
}

// Plain sync.Mutex: Lock is the only side; reads need it too.
func (p *plain) Bad() int {
	return p.n // want `plain\.n is read without plain\.mu held`
}

func (p *plain) Fine() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	return p.n
}
