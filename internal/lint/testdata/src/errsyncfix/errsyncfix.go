// Package errsyncfix exercises the errsync analyzer in a package opted
// in with the strict directive.
package errsyncfix

// dtdvet:strict errsync

type file struct{}

func (file) Sync() error                 { return nil }
func (file) Close() error                { return nil }
func (file) Write(p []byte) (int, error) { return len(p), nil }
func (file) Flush()                      {} // no error result: not watched

func discards(f file, p []byte) {
	f.Sync()           // want `error from file\.Sync is discarded \(dtdvet:strict errsync\)`
	_ = f.Close()      // want `error from file\.Close is assigned to _`
	n, _ := f.Write(p) // want `error result of file\.Write is assigned to _`
	_ = n
	defer f.Close()               // want `deferred file\.Close discards its error`
	go f.Sync()                   // want `error from file\.Sync is discarded by the go statement`
	_, err := f.Close(), f.Sync() // want `error from file\.Close is assigned to _`
	_ = err
}

func handled(f file, p []byte) error {
	if err := f.Sync(); err != nil {
		return err
	}
	n, err := f.Write(p)
	_ = n
	if err != nil {
		return err
	}
	f.Flush() // returns nothing: fine
	return f.Close()
}

// deferClose shows the sanctioned shapes: capture into a named return,
// or annotate with the reason.
func deferClose(f file) (err error) {
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	defer f.Sync() // dtdvet:allow errsync -- fixture: read-only handle, nothing buffered
	return nil
}
