// Package retryboundfix exercises the retrybound analyzer in a package
// opted in with the retry directive: loops must not wait on a
// compile-time-constant duration between attempts.
package retryboundfix

// dtdvet:retry

import (
	"math/rand"
	"time"
)

// spin is the bug: a fixed cadence forever.
func spin(try func() error) {
	for try() != nil {
		time.Sleep(100 * time.Millisecond) // want `retry loop waits a constant duration via time\.Sleep on every attempt \(dtdvet:retry\)`
	}
}

// selectSpin hides the same bug in a select arm.
func selectSpin(stop chan struct{}, try func() error) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(time.Second): // want `retry loop waits a constant duration via time\.After`
			if try() == nil {
				return
			}
		}
	}
}

// backoff is the sanctioned shape: the delay grows and is jittered, so
// the wait argument is computed, not constant.
func backoff(try func() error) {
	d := 10 * time.Millisecond
	for try() != nil {
		time.Sleep(d + time.Duration(rand.Int63n(int64(d))))
		if d < time.Second {
			d *= 2
		}
	}
}

// pollInterval passes because the cadence arrives through a variable —
// configuration, not a hard-coded spin.
func pollInterval(interval time.Duration, try func() error) {
	for try() != nil {
		time.Sleep(interval)
	}
}

// waitOnce is not a loop: a single fixed delay is fine.
func waitOnce() {
	time.Sleep(50 * time.Millisecond)
}

// annotated records why a fixed cadence is deliberate.
func heartbeat(stop chan struct{}, beat func()) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		time.Sleep(time.Second) // dtdvet:allow retrybound -- fixture: fixed heartbeat cadence is the protocol, not a retry
		beat()
	}
}
