// Package atomicmixfix exercises the atomicmix analyzer: a variable
// accessed through sync/atomic anywhere must never be read or written
// plainly elsewhere, and atomic.* wrapper values must not be copied or
// overwritten as plain values.
package atomicmixfix

import "sync/atomic"

type counters struct {
	hits int64
	size atomic.Int64
}

// bump makes hits an atomically-accessed word for the whole package.
func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) racyRead() int64 {
	return c.hits // want `hits is accessed with sync/atomic elsewhere in this package but read or written plainly here`
}

func (c *counters) racyWrite() {
	c.hits = 0 // want `hits is accessed with sync/atomic elsewhere`
}

func (c *counters) okRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

// okMethods uses the wrapper type the only way it should be used.
func (c *counters) okMethods() int64 {
	c.size.Add(1)
	return c.size.Load()
}

func (c *counters) copied() atomic.Int64 {
	return c.size // want `size has atomic type atomic\.Int64 but is used as a plain value here`
}

func (c *counters) overwritten() {
	c.size = atomic.Int64{} // want `size has atomic type atomic\.Int64`
}

// okPointer hands the word to a helper by address; the helper's pointer
// is an ordinary value and may be copied freely.
func (c *counters) okPointer() *atomic.Int64 {
	return &c.size
}

// newCounters initializes via a keyed composite literal: the value is not
// shared yet, so the plain write is the idiomatic constructor shape.
func newCounters(seed atomic.Int64) *counters {
	return &counters{size: seed} // dtdvet:allow atomicmix -- fixture: seed is a one-shot constructor argument
}

// total is a package-level word accessed atomically below.
var total int64

func addTotal(n int64) {
	atomic.AddInt64(&total, n)
}

func readTotalRacy() int64 {
	return total // want `total is accessed with sync/atomic elsewhere`
}

func readTotalOK() int64 {
	return atomic.LoadInt64(&total)
}

// singleThreaded documents a sanctioned plain access.
func singleThreaded() {
	total = 0 // dtdvet:allow atomicmix -- fixture: test-only reset before any goroutine starts
}
