// Package errsyncoff has no strict opt-in: the same discards produce no
// diagnostics.
package errsyncoff

type file struct{}

func (file) Sync() error  { return nil }
func (file) Close() error { return nil }

func discards(f file) {
	f.Sync()
	_ = f.Close()
	defer f.Close()
}
