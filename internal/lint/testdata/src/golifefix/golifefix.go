// Package golifefix exercises the golife analyzer in a package opted in
// with the strict directive: every goroutine must show lifecycle evidence
// (WaitGroup Done, channel receive, or context check), in its own body or
// through same-package callees.
package golifefix

// dtdvet:strict golife

import (
	"context"
	"sync"
)

func work() {}

// leak launches a goroutine nothing can stop or wait for.
func leak() {
	go func() { // want `goroutine is not tied to a lifecycle \(dtdvet:strict golife\)`
		for {
			work()
		}
	}()
}

// waited ties the goroutine to a WaitGroup.
func waited(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// stoppable ties the goroutine to a stop channel.
func stoppable(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// ctxBound ties the goroutine to a context.
func ctxBound(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			work()
		}
	}()
}

// tail shows evidence found transitively through a named same-package
// function.
func tail(stop chan struct{}) {
	<-stop
}

func startTail(stop chan struct{}) {
	go tail(stop)
}

// startLeaky launches a named function with no evidence anywhere.
func leakyLoop() {
	for {
		work()
	}
}

func startLeaky() {
	go leakyLoop() // want `goroutine is not tied to a lifecycle`
}

// opaque launches a function value the checker cannot see into: the
// annotation records why that is acceptable.
func opaque(f func()) {
	go f() // dtdvet:allow golife -- fixture: caller contract says f returns promptly
}

// nestedEvidence must not leak outward: the inner goroutine's receive
// ties the inner goroutine, not the outer one.
func nested(stop chan struct{}) {
	go func() { // want `goroutine is not tied to a lifecycle`
		go func() {
			<-stop
		}()
		for {
			work()
		}
	}()
}
