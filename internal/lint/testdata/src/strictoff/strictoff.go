// Package strictoff has neither the golife nor the retry opt-in: the
// same leaked goroutine and constant-sleep spin that fail golifefix and
// retryboundfix produce no diagnostics here.
package strictoff

import "time"

func work() {}

func leak() {
	go func() {
		for {
			work()
		}
	}()
}

func spin(try func() error) {
	for try() != nil {
		time.Sleep(100 * time.Millisecond)
	}
}
