package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"dtdevolve/internal/lint/analysis"
)

// NoallocAnalyzer rejects obviously-allocating constructs in functions
// marked dtdvet:noalloc. The repo's hot paths (wal.Append, record.Record,
// similarity.Evaluate) are gated at 0 allocs/op by testing.AllocsPerRun;
// this analyzer catches the regression at vet time instead of in a
// benchmark gate, and names the offending construct instead of a bare
// count.
//
// The check is syntactic and intentionally conservative in one direction
// only: everything it flags allocates in the general case (make, new, map
// and slice literals, &T{}, closures, go statements, fmt/errors calls,
// string<->[]byte conversions, non-constant string concatenation, and
// boxing a concrete value into an interface parameter). Escape-analysis
// wins are possible but are exactly the fragile wins the annotation
// exists to forbid relying on; a construct that is genuinely free on a
// cold error path is suppressed line-by-line with
// "dtdvet:allow noalloc -- <why>".
var NoallocAnalyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reject obviously-allocating constructs in functions marked dtdvet:noalloc",
	Run:  runNoalloc,
}

func runNoalloc(pass *analysis.Pass) error {
	fx := build(pass)
	for _, decl := range fx.funcs {
		fn := fx.funcObj(decl)
		if fn == nil || !fx.noalloc[fn] {
			continue
		}
		na := &noallocScanner{fx: fx, fn: fn}
		ast.Inspect(decl.Body, na.visit)
	}
	return nil
}

type noallocScanner struct {
	fx *facts
	fn *types.Func
}

func (na *noallocScanner) report(pos token.Pos, format string, args ...any) {
	if na.fx.allowed("noalloc", na.fn, pos) {
		return
	}
	na.fx.pass.Reportf(pos, format, args...)
}

func (na *noallocScanner) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		na.call(n)
	case *ast.CompositeLit:
		t := na.fx.pass.TypesInfo.TypeOf(n)
		if t == nil {
			break
		}
		switch t.Underlying().(type) {
		case *types.Map:
			na.report(n.Pos(), "map literal allocates in a dtdvet:noalloc function")
		case *types.Slice:
			na.report(n.Pos(), "slice literal allocates in a dtdvet:noalloc function")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
				na.report(n.Pos(), "&composite literal escapes to the heap in a dtdvet:noalloc function")
			}
		}
	case *ast.FuncLit:
		na.report(n.Pos(), "function literal allocates its closure in a dtdvet:noalloc function")
		return true // still scan the body: it runs on the hot path too
	case *ast.GoStmt:
		na.report(n.Pos(), "go statement allocates a goroutine in a dtdvet:noalloc function")
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			t := na.fx.pass.TypesInfo.TypeOf(n)
			if t != nil && isString(t) && na.fx.pass.TypesInfo.Types[n].Value == nil {
				na.report(n.Pos(), "non-constant string concatenation allocates in a dtdvet:noalloc function")
			}
		}
	}
	return true
}

func (na *noallocScanner) call(call *ast.CallExpr) {
	info := na.fx.pass.TypesInfo

	// Conversions: T(x). String <-> byte/rune slice conversions copy;
	// conversions to an interface type box.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		switch {
		case src != nil && isString(dst) != isString(src) && (stringish(dst) && stringish(src)):
			na.report(call.Pos(), "conversion from %s to %s allocates in a dtdvet:noalloc function", src, dst)
		case isInterface(dst) && src != nil && !isInterface(src):
			na.report(call.Pos(), "conversion to interface type %s boxes in a dtdvet:noalloc function", dst)
		}
		return
	}

	// Builtins: make and new always allocate; append is allowed (amortized
	// zero against a pre-grown buffer, which is how the hot paths use it).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				na.report(call.Pos(), "%s allocates in a dtdvet:noalloc function", b.Name())
			}
			return
		}
	}

	flaggedCall := false
	if callee := na.fx.calleeOf(call); callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt", "errors":
			na.report(call.Pos(), "%s.%s allocates in a dtdvet:noalloc function", callee.Pkg().Name(), callee.Name())
			flaggedCall = true
		}
	}

	// Boxing at the call boundary: passing a concrete value where the
	// parameter is an interface allocates unless the value is pointer-shaped
	// and escapes analysis cooperates — exactly the bet noalloc forbids.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || flaggedCall {
		return
	}
	for i, arg := range call.Args {
		pt := paramAt(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !isInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isInterface(at) || isUntypedNil(at) {
			continue
		}
		na.report(arg.Pos(), "passing %s as interface %s boxes in a dtdvet:noalloc function", at, pt)
	}
}

// paramAt returns the effective type of parameter i, unrolling a variadic
// tail unless the call spreads a slice with "...".
func paramAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if ellipsis {
			return last // the slice is passed whole; no per-element boxing
		}
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringish reports whether t participates in the copying
// string<->[]byte/[]rune conversion pairs.
func stringish(t types.Type) bool {
	if isString(t) {
		return true
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
