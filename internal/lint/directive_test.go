package lint

import (
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text    string
		verb    string
		args    []string
		reason  string
		wantErr string // substring of the malformed-directive error, "" = valid
	}{
		{text: "plain prose comment"},
		{text: "dtdvetish: not ours"},
		{text: "dtdvet:requires mu", verb: "requires", args: []string{"mu"}},
		{text: "dtdvet:requires Source.mu:r", verb: "requires", args: []string{"Source.mu:r"}},
		{text: "  dtdvet:requires mu", verb: "requires", args: []string{"mu"}},
		{text: "dtdvet:requires mu // trailing note ignored", verb: "requires", args: []string{"mu"}},
		{text: "dtdvet:requires", wantErr: "want a single lock reference"},
		{text: "dtdvet:requires a b", wantErr: "want a single lock reference"},
		{text: "dtdvet:requires 1mu", wantErr: "want a single lock reference"},
		{text: "dtdvet:requires a.b.c", wantErr: "want a single lock reference"},
		{text: "dtdvet:guarded_by mu", verb: "guarded_by", args: []string{"mu"}},
		{text: "dtdvet:guarded_by", wantErr: "want a single mutex field name"},
		{text: "dtdvet:guarded_by a.b", wantErr: "want a single mutex field name"},
		{text: "dtdvet:noalloc", verb: "noalloc"},
		{text: "dtdvet:noalloc please", wantErr: "takes no arguments"},
		{text: "dtdvet:journaled", verb: "journaled"},
		{text: "dtdvet:journalpoint", verb: "journalpoint"},
		{text: "dtdvet:nojournal -- rebuilt on recovery", verb: "nojournal", reason: "rebuilt on recovery"},
		{text: "dtdvet:nojournal", wantErr: "missing reason"},
		{text: "dtdvet:nojournal because", wantErr: "takes no arguments"},
		{text: "dtdvet:allow locks -- init path", verb: "allow", args: []string{"locks"}, reason: "init path"},
		{text: "dtdvet:allow locks", wantErr: "missing reason"},
		{text: "dtdvet:allow everything -- x", wantErr: "want a single analyzer name"},
		{text: "dtdvet:allow locks journal -- x", wantErr: "want a single analyzer name"},
		{text: "dtdvet:strict errsync", verb: "strict", args: []string{"errsync"}},
		{text: "dtdvet:strict", wantErr: "want a single analyzer name"},
		{text: "dtdvet:replayroot", verb: "replayroot"},
		{text: "dtdvet:replayroot ApplyWALRecord", wantErr: "takes no arguments"},
		{text: "dtdvet:retry", verb: "retry"},
		{text: "dtdvet:retry hard", wantErr: "takes no arguments"},
		{text: "dtdvet:strict golife", verb: "strict", args: []string{"golife"}},
		{text: "dtdvet:strict lifecycle", wantErr: "want a single analyzer name"},
		{text: "dtdvet:allow replaydet -- keys sorted below", verb: "allow", args: []string{"replaydet"}, reason: "keys sorted below"},
		{text: "dtdvet:allow atomicmix -- constructor, not shared yet", verb: "allow", args: []string{"atomicmix"}, reason: "constructor, not shared yet"},
		{text: "dtdvet:allow retrybound -- fixed cadence is the protocol", verb: "allow", args: []string{"retrybound"}, reason: "fixed cadence is the protocol"},
		{text: "dtdvet:allow golife", wantErr: "missing reason"},
		{text: "dtdvet:", wantErr: "missing verb"},
		{text: "dtdvet:frobnicate", wantErr: `unknown directive verb "frobnicate"`},
	}
	for _, tc := range cases {
		d := parseDirective(0, tc.text)
		if tc.verb == "" && tc.wantErr == "" {
			if d != nil {
				t.Errorf("parseDirective(%q) = %+v, want nil (not a directive)", tc.text, d)
			}
			continue
		}
		if d == nil {
			t.Errorf("parseDirective(%q) = nil, want a directive", tc.text)
			continue
		}
		if tc.wantErr != "" {
			if !strings.Contains(d.Err, tc.wantErr) {
				t.Errorf("parseDirective(%q).Err = %q, want substring %q", tc.text, d.Err, tc.wantErr)
			}
			continue
		}
		if d.Err != "" {
			t.Errorf("parseDirective(%q).Err = %q, want valid", tc.text, d.Err)
			continue
		}
		if d.Verb != tc.verb {
			t.Errorf("parseDirective(%q).Verb = %q, want %q", tc.text, d.Verb, tc.verb)
		}
		if len(d.Args) != len(tc.args) {
			t.Errorf("parseDirective(%q).Args = %v, want %v", tc.text, d.Args, tc.args)
		} else {
			for i := range tc.args {
				if d.Args[i] != tc.args[i] {
					t.Errorf("parseDirective(%q).Args = %v, want %v", tc.text, d.Args, tc.args)
					break
				}
			}
		}
		if d.Reason != tc.reason {
			t.Errorf("parseDirective(%q).Reason = %q, want %q", tc.text, d.Reason, tc.reason)
		}
	}
}
