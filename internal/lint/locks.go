package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"dtdevolve/internal/lint/analysis"
)

// LocksAnalyzer enforces the lock discipline declared by dtdvet:guarded_by
// and dtdvet:requires directives:
//
//   - a field marked guarded_by may only be read with its mutex held (the
//     read side of an RWMutex suffices) and only be written with the write
//     side held;
//   - a function marked requires may only be called while the named lock
//     is held;
//   - a function must not return while holding a lock it took without
//     defer (the early-return leak), nor unlock a mutex it does not hold,
//     nor lock a mutex it already holds;
//   - a function following the *Locked naming convention must carry a
//     requires directive, so the convention stays machine-checked.
//
// The checker is flow-approximate: statements are scanned in source
// order, branch bodies see a copy of the lock state and their effects do
// not escape (so a Lock inside an if-arm does not count as held after
// it), and goroutine bodies start with no locks held. That is exactly
// sharp enough for the lock dances this codebase uses (two-phase
// read/write ingest, checkpoint rotate-then-snapshot) without a full CFG.
var LocksAnalyzer = &analysis.Analyzer{
	Name: "locks",
	Doc:  "check guarded-field access, requires-annotated calls and Lock/Unlock pairing",
	Run:  runLocks,
}

// lockMode is how strongly a lock is held.
type lockMode uint8

const (
	lockNone lockMode = iota
	lockRead
	lockWrite
)

// lockState is one lock's standing in the current scan: how it is held
// and whether a deferred unlock (or a caller, via requires) releases it.
type lockState struct {
	m        lockMode
	deferred bool
}

type lockEnv map[lockKey]lockState

func (e lockEnv) clone() lockEnv {
	c := make(lockEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

func runLocks(pass *analysis.Pass) error {
	fx := build(pass)
	for _, decl := range fx.funcs {
		fn := fx.funcObj(decl)
		s := &lockScanner{fx: fx, fn: fn}
		env := make(lockEnv)
		for _, req := range fx.requires[fn] {
			m := lockWrite
			if !req.write {
				m = lockRead
			}
			// deferred=true: the caller owns the release.
			env[req.key] = lockState{m: m, deferred: true}
		}
		s.stmts(decl.Body.List, env)
		s.checkReturn(env, decl.Body.Rbrace)

		if fn != nil && fx.requires[fn] == nil &&
			len(decl.Name.Name) > len("Locked") &&
			decl.Name.Name[len(decl.Name.Name)-len("Locked"):] == "Locked" &&
			!fx.allowed("locks", fn, decl.Pos()) {
			pass.Reportf(decl.Pos(), "%s follows the *Locked naming convention but has no dtdvet:requires directive", decl.Name.Name)
		}
	}
	return nil
}

type lockScanner struct {
	fx *facts
	fn *types.Func
}

func (s *lockScanner) report(pos token.Pos, format string, args ...any) {
	if s.fx.allowed("locks", s.fn, pos) {
		return
	}
	s.fx.pass.Reportf(pos, format, args...)
}

func (s *lockScanner) stmts(list []ast.Stmt, env lockEnv) {
	for _, st := range list {
		s.stmt(st, env)
	}
}

func (s *lockScanner) stmt(st ast.Stmt, env lockEnv) {
	switch st := st.(type) {
	case nil:
	case *ast.ExprStmt:
		s.expr(st.X, env, false)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			s.expr(rhs, env, false)
		}
		for _, lhs := range st.Lhs {
			s.expr(lhs, env, true)
		}
	case *ast.IncDecStmt:
		s.expr(st.X, env, true)
	case *ast.SendStmt:
		s.expr(st.Chan, env, false)
		s.expr(st.Value, env, false)
	case *ast.DeferStmt:
		s.deferStmt(st, env)
	case *ast.GoStmt:
		s.goStmt(st, env)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, env, false)
		}
		s.checkReturn(env, st.Pos())
	case *ast.IfStmt:
		s.stmt(st.Init, env)
		s.expr(st.Cond, env, false)
		s.stmts(st.Body.List, env.clone())
		if st.Else != nil {
			s.stmt(st.Else, env.clone())
		}
	case *ast.ForStmt:
		s.stmt(st.Init, env)
		if st.Cond != nil {
			s.expr(st.Cond, env, false)
		}
		body := env.clone()
		s.stmts(st.Body.List, body)
		s.stmt(st.Post, body)
	case *ast.RangeStmt:
		s.expr(st.X, env, false)
		body := env.clone()
		s.stmts(st.Body.List, body)
	case *ast.SwitchStmt:
		s.stmt(st.Init, env)
		if st.Tag != nil {
			s.expr(st.Tag, env, false)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			branch := env.clone()
			for _, e := range cc.List {
				s.expr(e, branch, false)
			}
			s.stmts(cc.Body, branch)
		}
	case *ast.TypeSwitchStmt:
		s.stmt(st.Init, env)
		s.stmt(st.Assign, env)
		for _, c := range st.Body.List {
			branch := env.clone()
			s.stmts(c.(*ast.CaseClause).Body, branch)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			branch := env.clone()
			s.stmt(cc.Comm, branch)
			s.stmts(cc.Body, branch)
		}
	case *ast.BlockStmt:
		s.stmts(st.List, env)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, env)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, env, false)
					}
				}
			}
		}
	}
}

// deferStmt handles "defer x.mu.Unlock()" (a deferred release keeps the
// lock held for the rest of the function but satisfies the early-return
// rule) and scans any other deferred call normally.
func (s *lockScanner) deferStmt(st *ast.DeferStmt, env lockEnv) {
	if op := s.fx.asMutexOp(st.Call); op.valid {
		switch op.op {
		case "Unlock", "RUnlock":
			cur := env[op.key]
			if cur.m == lockNone {
				s.report(st.Pos(), "deferred %s.%s with the lock not held", op.key, op.op)
				return
			}
			cur.deferred = true
			env[op.key] = cur
		default:
			s.report(st.Pos(), "deferred %s.%s acquires a lock at function exit", op.key, op.op)
		}
		return
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		for _, arg := range st.Call.Args {
			s.expr(arg, env, false)
		}
		s.stmts(lit.Body.List, make(lockEnv))
		return
	}
	s.expr(st.Call, env, false)
}

// goStmt scans a goroutine launch: arguments are evaluated under the
// caller's locks, but the body runs with none held.
func (s *lockScanner) goStmt(st *ast.GoStmt, env lockEnv) {
	for _, arg := range st.Call.Args {
		s.expr(arg, env, false)
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		s.stmts(lit.Body.List, make(lockEnv))
		return
	}
	if callee := s.fx.calleeOf(st.Call); callee != nil {
		for _, req := range s.fx.requires[callee] {
			s.report(st.Pos(), "%s requires %s, but a new goroutine starts with no locks held", callee.Name(), req.key)
		}
	}
	s.expr(st.Call.Fun, env, false)
}

func (s *lockScanner) checkReturn(env lockEnv, pos token.Pos) {
	for k, st := range env {
		if st.m != lockNone && !st.deferred {
			s.report(pos, "return while %s is held with no deferred unlock on this path", k)
		}
	}
}

// expr scans one expression. write reports whether the expression is a
// store target (assignment LHS, ++/--, or address-taken).
func (s *lockScanner) expr(e ast.Expr, env lockEnv, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
	case *ast.CallExpr:
		s.call(e, env)
	case *ast.SelectorExpr:
		if fieldObj := s.fx.selectedField(e); fieldObj != nil {
			if guard, ok := s.fx.guards[fieldObj]; ok {
				s.checkAccess(env, guard, fieldObj, write, e.Sel.Pos())
			}
		}
		s.expr(e.X, env, false)
	case *ast.IndexExpr:
		// A write through an index ("s.entries[k] = v") mutates what the
		// base field points at: it needs the same write protection.
		s.expr(e.X, env, write)
		s.expr(e.Index, env, false)
	case *ast.IndexListExpr:
		s.expr(e.X, env, write)
		for _, ix := range e.Indices {
			s.expr(ix, env, false)
		}
	case *ast.StarExpr:
		s.expr(e.X, env, write)
	case *ast.ParenExpr:
		s.expr(e.X, env, write)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking the address of guarded state lets it escape the
			// critical section; treat as a write.
			s.expr(e.X, env, true)
		} else {
			s.expr(e.X, env, false)
		}
	case *ast.BinaryExpr:
		s.expr(e.X, env, false)
		s.expr(e.Y, env, false)
	case *ast.SliceExpr:
		s.expr(e.X, env, write)
		s.expr(e.Low, env, false)
		s.expr(e.High, env, false)
		s.expr(e.Max, env, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.expr(el, env, false)
		}
	case *ast.KeyValueExpr:
		s.expr(e.Key, env, false)
		s.expr(e.Value, env, false)
	case *ast.TypeAssertExpr:
		s.expr(e.X, env, false)
	case *ast.FuncLit:
		// A closure may run on any goroutine; its body starts with no
		// locks assumed held.
		s.stmts(e.Body.List, make(lockEnv))
	}
}

func (s *lockScanner) call(call *ast.CallExpr, env lockEnv) {
	if op := s.fx.asMutexOp(call); op.valid {
		s.applyMutexOp(op, env, call.Pos())
		return
	}
	if callee := s.fx.calleeOf(call); callee != nil {
		for _, req := range s.fx.requires[callee] {
			held := env[req.key]
			switch {
			case held.m == lockNone:
				s.report(call.Pos(), "call to %s requires %s held", callee.Name(), req.key)
			case req.write && held.m != lockWrite:
				s.report(call.Pos(), "call to %s requires the write side of %s, but only the read lock is held", callee.Name(), req.key)
			}
		}
	}
	s.expr(call.Fun, env, false)
	for _, arg := range call.Args {
		s.expr(arg, env, false)
	}
}

func (s *lockScanner) applyMutexOp(op mutexOp, env lockEnv, pos token.Pos) {
	cur := env[op.key]
	switch op.op {
	case "Lock", "RLock":
		if cur.m != lockNone {
			s.report(pos, "%s.%s while %s is already held on this path (possible deadlock)", op.key, op.op, op.key)
		}
		m := lockWrite
		if op.op == "RLock" {
			m = lockRead
		}
		// Keep a deferred release sticky so a (already reported) double
		// lock does not cascade into a bogus early-return finding.
		env[op.key] = lockState{m: m, deferred: cur.deferred}
	case "Unlock", "RUnlock":
		if cur.m == lockNone {
			s.report(pos, "%s.%s with the lock not held on this path", op.key, op.op)
		}
		env[op.key] = lockState{}
	}
}

// checkAccess validates one guarded-field access against the lock state.
func (s *lockScanner) checkAccess(env lockEnv, guard lockKey, field *types.Var, write bool, pos token.Pos) {
	held := env[guard]
	switch {
	case held.m == lockNone:
		verb := "read"
		if write {
			verb = "written"
		}
		s.report(pos, "%s.%s is %s without %s held (dtdvet:guarded_by)", guard.typ.Name(), field.Name(), verb, guard)
	case write && held.m != lockWrite:
		s.report(pos, "%s.%s is written while only the read side of %s is held", guard.typ.Name(), field.Name(), guard)
	}
}
