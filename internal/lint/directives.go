package lint

import "dtdevolve/internal/lint/analysis"

// DirectiveAnalyzer rejects malformed or misattached directive comments.
// A typo in an invariant annotation must be a build failure: a comment
// that silently stops parsing is an invariant that silently stops being
// checked.
var DirectiveAnalyzer = &analysis.Analyzer{
	Name: "directive",
	Doc:  "report malformed or misplaced dtdvet: directive comments",
	Run:  runDirective,
}

func runDirective(pass *analysis.Pass) error {
	fx := build(pass)
	for _, d := range fx.bad {
		pass.Reportf(d.Pos, "malformed dtdvet directive: %s", d.Err)
	}
	// Directives in test files are not bound by build (test files are not
	// analyzed), but a directive comment sitting in one is almost
	// certainly a mistake: it looks load-bearing and does nothing.
	for _, f := range pass.Files {
		if !fx.isTestFile(f) {
			continue
		}
		for _, g := range f.Comments {
			for _, d := range directivesInGroup(g) {
				pass.Reportf(d.Pos, "dtdvet directive in a test file has no effect (test files are not analyzed)")
			}
		}
	}
	return nil
}
