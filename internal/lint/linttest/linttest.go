// Package linttest runs dtdvet analyzers over fixture packages and checks
// their diagnostics against expectations written in the fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest: a comment
//
//	s.gen++ // want `gen is written without`
//
// asserts that some diagnostic is reported on that line whose message
// matches the (Go-quoted or backquoted) regular expression. Every
// diagnostic must be matched by an expectation and every expectation by a
// diagnostic. The marker may also sit inside another comment (a
// directive comment followed by "// want ..."), which is how fixtures pin
// diagnostics that the directive analyzer reports at the directive
// comment itself.
package linttest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dtdevolve/internal/lint/analysis"

	"go/token"
)

// wantPat finds the expectation marker inside a comment's raw text.
var wantPat = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedPat matches one Go-quoted ("...") or backquoted (` + "`...`" + `) string.
var quotedPat = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkgpath> as one package, runs the analyzers,
// and diffs diagnostics against the fixture's want comments.
func Run(t *testing.T, testdata, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	files, pkg, info, err := analysis.LoadDir(fset, dir, pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var wants []*expectation
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantPat.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedPat.FindAllString(m[1], -1) {
					pattern, err := unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: pattern,
					})
				}
			}
		}
	}

	diags, err := analysis.Run(analyzers, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !match(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func match(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
