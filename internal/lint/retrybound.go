package lint

import (
	"go/ast"
	"go/token"

	"dtdevolve/internal/lint/analysis"
)

// RetryboundAnalyzer checks retry pacing in packages opted in with a
// floating "dtdvet:retry" comment: a loop that waits with time.Sleep or
// time.After on a compile-time-constant duration retries at a fixed
// cadence forever — the constant-sleep spin that hammers an unreachable
// primary and, across a fleet, reconnects every follower in lockstep the
// moment it returns (DESIGN.md §14). Retry delays must be computed —
// grown across attempts and jittered, as replicate's backoff schedule is —
// so the analyzer accepts any non-constant wait argument and flags only
// the literal spin. Deliberate fixed pacing (a poll interval that is
// configuration, not retry) either arrives through a variable, which
// passes, or carries "dtdvet:allow retrybound -- <why>".
var RetryboundAnalyzer = &analysis.Analyzer{
	Name: "retrybound",
	Doc:  "forbid constant-delay retry spins in loops of packages marked dtdvet:retry",
	Run:  runRetrybound,
}

func runRetrybound(pass *analysis.Pass) error {
	fx := build(pass)
	if !fx.retry {
		return nil
	}
	for _, decl := range fx.funcs {
		fn := fx.funcObj(decl)

		// Collect the source spans of every loop in the function; a wait
		// call anywhere inside one (body, condition, select arm) runs once
		// per attempt.
		var loops []span
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, span{from: n.Pos(), to: n.End()})
			}
			return true
		})
		if len(loops) == 0 {
			continue
		}

		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !inSpan(loops, call.Pos()) {
				return true
			}
			what, ok := constantWait(fx, call)
			if !ok {
				return true
			}
			if fx.allowed("retrybound", fn, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"retry loop waits a constant duration via %s on every attempt (dtdvet:retry); back off with a growing, jittered delay or annotate dtdvet:allow retrybound",
				what)
			return true
		})
	}
	return nil
}

type span struct{ from, to token.Pos }

func inSpan(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.from <= pos && pos < s.to {
			return true
		}
	}
	return false
}

// constantWait recognizes time.Sleep(d) and time.After(d) where d is a
// compile-time constant.
func constantWait(fx *facts, call *ast.CallExpr) (string, bool) {
	callee := fx.calleeOf(call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "time" {
		return "", false
	}
	switch callee.Name() {
	case "Sleep", "After":
	default:
		return "", false
	}
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := fx.pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return "", false
	}
	return "time." + callee.Name(), true
}
