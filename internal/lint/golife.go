package lint

import (
	"go/ast"
	"go/types"

	"dtdevolve/internal/lint/analysis"
)

// GolifeAnalyzer checks goroutine shutdown discipline in packages opted
// in with "dtdvet:strict golife": every go statement must launch a body
// with recognizable lifecycle evidence — a sync.WaitGroup Done, a channel
// receive (stop channels, tickers, select arms), or a context.Context
// Done/Err check — found in the body itself or transitively through
// same-package callees. A goroutine with none of these has no way to be
// waited for or told to stop: it is the leaked-tailer/leaked-checkpointer
// bug, invisible in unit tests (the process exits) and fatal in a server
// that restarts components (DESIGN.md §13, §14). Launches whose lifecycle
// the checker cannot see (cross-package bodies, function values) and
// goroutines that are deliberately run-to-completion carry
// "dtdvet:allow golife -- <why>".
var GolifeAnalyzer = &analysis.Analyzer{
	Name: "golife",
	Doc:  "require goroutines in packages marked dtdvet:strict golife to be tied to a WaitGroup, stop channel, or context",
	Run:  runGolife,
}

func runGolife(pass *analysis.Pass) error {
	fx := build(pass)
	if !fx.strict["golife"] {
		return nil
	}
	gs := &golifeScanner{fx: fx, memo: make(map[*types.Func]bool), active: make(map[*types.Func]bool)}
	for _, decl := range fx.funcs {
		fn := fx.funcObj(decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if gs.launchHasLifecycle(g) || fx.allowed("golife", fn, g.Pos()) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine is not tied to a lifecycle (dtdvet:strict golife): no WaitGroup Done, channel receive, or context check in its body; it can neither be stopped nor waited for — wire a stop signal or annotate dtdvet:allow golife")
			return true
		})
	}
	return nil
}

type golifeScanner struct {
	fx     *facts
	memo   map[*types.Func]bool
	active map[*types.Func]bool
}

// launchHasLifecycle resolves what a go statement runs and looks for
// lifecycle evidence in it.
func (gs *golifeScanner) launchHasLifecycle(g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return gs.evidence(lit.Body)
	}
	if callee := gs.fx.calleeOf(g.Call); callee != nil {
		return gs.fnHasLifecycle(callee)
	}
	return false // function value or builtin: nothing to inspect
}

// fnHasLifecycle reports whether fn's body (same package, transitively)
// contains lifecycle evidence, memoized.
func (gs *golifeScanner) fnHasLifecycle(fn *types.Func) bool {
	if v, ok := gs.memo[fn]; ok {
		return v
	}
	if gs.active[fn] {
		return false // recursion: a cycle alone is not evidence
	}
	decl := gs.fx.decls[fn]
	if decl == nil {
		return false // other package, or no body visible
	}
	gs.active[fn] = true
	v := gs.evidence(decl.Body)
	delete(gs.active, fn)
	gs.memo[fn] = v
	return v
}

// evidence scans a body for lifecycle constructs: a channel receive
// (covers stop channels, tickers and every select receive arm), a range
// over a channel, a sync.WaitGroup Done, or a context.Context Done/Err.
// Nested go statements are skipped — evidence inside a goroutine the body
// launches ties that goroutine, not this one — and same-package callees
// are searched transitively.
func (gs *golifeScanner) evidence(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := gs.fx.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if gs.lifecycleCall(n) {
				found = true
				return false
			}
			if callee := gs.fx.calleeOf(n); callee != nil && callee.Pkg() == gs.fx.pass.Pkg {
				if gs.fnHasLifecycle(callee) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// lifecycleCall recognizes (*sync.WaitGroup).Done and
// (context.Context).Done/Err calls.
func (gs *golifeScanner) lifecycleCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := gs.fx.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == "sync" && fn.Name() == "Done":
		return true // (*sync.WaitGroup).Done
	case fn.Pkg().Path() == "context" && (fn.Name() == "Done" || fn.Name() == "Err"):
		return true
	}
	return false
}
