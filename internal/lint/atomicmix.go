package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"dtdevolve/internal/lint/analysis"
)

// AtomicmixAnalyzer enforces all-or-nothing atomicity on shared words:
// once any code in a package touches a variable through sync/atomic
// (atomic.AddInt64(&s.n, …) and friends), every other access to that
// variable must go through the same API — a plain s.n++ or s.n read
// elsewhere is a data race the race detector only catches when the two
// sites actually collide under test. Fields and variables of the
// atomic.* wrapper types (atomic.Int64, atomic.Pointer[T], …) get the
// complementary check: they must be used through their methods or by
// address — copying one as a plain value, or overwriting it with a
// composite literal, tears the word the type exists to protect.
//
// The analyzer is always on (it triggers only where atomic usage
// exists) and is deliberately forgiving about initialization: keyed
// composite-literal fields are exempt, because building a value that no
// other goroutine can see yet is the idiomatic constructor shape
// (xmltree.Node.Clone stamps labelID this way). Anything else that is
// genuinely single-threaded carries "dtdvet:allow atomicmix -- <why>".
var AtomicmixAnalyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "forbid plain access to variables that are accessed with sync/atomic (or have an atomic.* type) elsewhere",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *analysis.Pass) error {
	fx := build(pass)
	am := &atomicmixScanner{
		fx:         fx,
		viaFn:      make(map[*types.Var]bool),
		sanctioned: make(map[ast.Node]bool),
	}
	// Pass 1: find every variable reached through a sync/atomic function
	// and mark the expression nodes that constitute sanctioned access.
	for _, decl := range fx.funcs {
		am.sanction(decl.Body)
	}
	// Pass 2: every remaining use of a tracked variable is a plain access.
	for _, decl := range fx.funcs {
		am.check(decl.Body, fx.funcObj(decl))
	}
	return nil
}

type atomicmixScanner struct {
	fx *facts
	// viaFn holds variables whose address is passed to a sync/atomic
	// function anywhere in the package (the atomic.AddInt64(&v) style).
	viaFn map[*types.Var]bool
	// sanctioned marks the exact AST nodes through which atomic access
	// happens: the &v argument of an atomic call, the receiver of an
	// atomic.* method, the operand of & on an atomic.* value, and keyed
	// composite-literal fields (initialization before sharing).
	sanctioned map[ast.Node]bool
}

// isAtomicValueType reports whether t is one of the sync/atomic wrapper
// types (not a pointer to one: copying a *atomic.Int64 is fine).
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// refVar resolves an expression to the variable it names: a selector to a
// field, or a bare identifier to a local or package-level var.
func (am *atomicmixScanner) refVar(e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := am.fx.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := am.fx.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

func (am *atomicmixScanner) sanction(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						am.sanctioned[key] = true
					}
				}
			}
		case *ast.UnaryExpr:
			// &x on an atomic.* value: taking the address to call methods
			// through a pointer, or to hand the word to a helper, is how
			// the wrapper types are meant to travel.
			if n.Op == token.AND {
				if v := am.refVar(n.X); v != nil && isAtomicValueType(v.Type()) {
					am.sanctioned[ast.Unparen(n.X)] = true
				}
			}
		case *ast.CallExpr:
			callee := am.fx.calleeOf(n)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			sig := callee.Type().(*types.Signature)
			if sig.Recv() != nil {
				// x.f.Add(1): the receiver expression is the sanctioned
				// access to f.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					am.sanctioned[ast.Unparen(sel.X)] = true
				}
				return true
			}
			// atomic.AddInt64(&x.f, 1): &f is the sanctioned access, and f
			// is from now on an atomically-accessed variable everywhere.
			for _, arg := range n.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				if v := am.refVar(ue.X); v != nil {
					am.viaFn[v] = true
					am.sanctioned[ast.Unparen(ue.X)] = true
				}
			}
		}
		return true
	})
}

func (am *atomicmixScanner) check(body ast.Node, fn *types.Func) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			v, ok := am.fx.pass.TypesInfo.Uses[n.Sel].(*types.Var)
			if !ok || am.sanctioned[n] {
				return true
			}
			am.report(n.Pos(), fn, v, n.Sel.Name)
		case *ast.Ident:
			v, ok := am.fx.pass.TypesInfo.Uses[n].(*types.Var)
			// Field uses are reported at their selector; a bare ident here
			// is a local or package-level variable.
			if !ok || v.IsField() || am.sanctioned[n] {
				return true
			}
			am.report(n.Pos(), fn, v, n.Name)
		}
		return true
	})
}

func (am *atomicmixScanner) report(pos token.Pos, fn *types.Func, v *types.Var, name string) {
	if am.fx.allowed("atomicmix", fn, pos) {
		return
	}
	switch {
	case am.viaFn[v]:
		am.fx.pass.Reportf(pos,
			"%s is accessed with sync/atomic elsewhere in this package but read or written plainly here (dtdvet:atomicmix); use the atomic API at every site or annotate dtdvet:allow atomicmix",
			name)
	case isAtomicValueType(v.Type()):
		am.fx.pass.Reportf(pos,
			"%s has atomic type %s but is used as a plain value here (dtdvet:atomicmix); call its methods (or take its address) instead of copying or overwriting it",
			name, types.TypeString(v.Type(), func(p *types.Package) string { return p.Name() }))
	}
}
