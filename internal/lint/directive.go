// Directive parsing for the dtdvet analyzer suite.
//
// Invariants are declared in the source as structured comments with the
// prefix "dtdvet:" (optionally after "// "). The verbs, one directive per
// comment line — each spelled as the prefix immediately followed by the
// verb (see DESIGN.md §11 for the full grammar with examples; the lines
// below omit the prefix so this very comment is not parsed as directives):
//
//	requires <lock>[:r]      on a func: callers must hold <lock>
//	                         (<lock> = [Type.]field; :r = the read
//	                         side of an RWMutex suffices)
//	guarded_by <field>       on a struct field: accesses require the
//	                         named sibling mutex field
//	noalloc                  on a func: body must contain no
//	                         obviously-allocating construct
//	journaled                on a struct type: exported mutating
//	                         methods must journal before writing
//	journalpoint             on a func: this is the WAL append point
//	nojournal -- <reason>    on a func: exempt from the journal rule
//	replayroot               on a func: a replay/emission entry point;
//	                         everything it (same-package) reaches must
//	                         be deterministic (no clock, no rand, no
//	                         map-order iteration)
//	retry                    anywhere in a file: opt the whole package
//	                         into the retrybound analyzer (retry loops
//	                         must not spin on a constant sleep)
//	allow <analyzer> -- <reason>
//	                         on a func doc or trailing a statement:
//	                         suppress that analyzer here
//	strict <analyzer>        anywhere in a file: opt the whole
//	                         package into a package-scoped analyzer
//	                         (errsync, golife)
//
// A comment that starts with the prefix but does not parse is itself a
// diagnostic (the directive analyzer): a misspelled invariant must fail
// the build, not silently stop being checked.
package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Prefix is the comment marker introducing a directive.
const Prefix = "dtdvet:"

// analyzer names valid in allow/strict arguments.
var analyzerNames = map[string]bool{
	"locks":      true,
	"journal":    true,
	"noalloc":    true,
	"errsync":    true,
	"directive":  true,
	"replaydet":  true,
	"golife":     true,
	"atomicmix":  true,
	"retrybound": true,
}

// Directive is one parsed dtdvet comment.
type Directive struct {
	Pos    token.Pos
	Verb   string
	Args   []string
	Reason string // text after " -- "
	Err    string // non-empty when malformed
	// attached records whether the facts builder bound the directive to a
	// declaration; floating directives of positional verbs are malformed.
	attached bool
}

var lockRefPat = regexp.MustCompile(`^([A-Za-z_]\w*\.)?[A-Za-z_]\w*(:r)?$`)
var identPat = regexp.MustCompile(`^[A-Za-z_]\w*$`)

// parseDirective parses one comment's text (without the // or /* markers),
// returning nil when the comment is not a directive at all.
func parseDirective(pos token.Pos, text string) *Directive {
	trimmed := strings.TrimLeft(text, " \t")
	if !strings.HasPrefix(trimmed, Prefix) {
		return nil
	}
	d := &Directive{Pos: pos}
	body := strings.TrimPrefix(trimmed, Prefix)
	// A nested "//" starts an inline note (and, in fixtures, a "// want"
	// expectation); everything after it is not part of the directive.
	if head, _, ok := strings.Cut(body, " //"); ok {
		body = head
	}
	if head, reason, ok := strings.Cut(body, " -- "); ok {
		body = head
		d.Reason = strings.TrimSpace(reason)
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		d.Err = "missing verb"
		return d
	}
	d.Verb = fields[0]
	d.Args = fields[1:]
	switch d.Verb {
	case "requires":
		if len(d.Args) != 1 || !lockRefPat.MatchString(d.Args[0]) {
			d.Err = "want a single lock reference: dtdvet:requires [Type.]field[:r]"
		}
	case "guarded_by":
		if len(d.Args) != 1 || !identPat.MatchString(d.Args[0]) {
			d.Err = "want a single mutex field name: dtdvet:guarded_by field"
		}
	case "noalloc", "journaled", "journalpoint", "replayroot", "retry":
		if len(d.Args) != 0 {
			d.Err = "directive takes no arguments"
		}
	case "nojournal":
		if len(d.Args) != 0 {
			d.Err = "directive takes no arguments"
		} else if d.Reason == "" {
			d.Err = "missing reason: dtdvet:nojournal -- <why this mutation is not journaled>"
		}
	case "allow":
		if len(d.Args) != 1 || !analyzerNames[d.Args[0]] {
			d.Err = "want a single analyzer name: dtdvet:allow locks|journal|noalloc|errsync"
		} else if d.Reason == "" {
			d.Err = "missing reason: dtdvet:allow " + strings.Join(d.Args, " ") + " -- <why>"
		}
	case "strict":
		if len(d.Args) != 1 || !analyzerNames[d.Args[0]] {
			d.Err = "want a single analyzer name: dtdvet:strict errsync"
		}
	default:
		d.Err = "unknown directive verb " + strconvQuote(d.Verb)
	}
	return d
}

// strconvQuote avoids importing strconv just for %q semantics here.
func strconvQuote(s string) string { return `"` + s + `"` }

// directivesInGroup parses every directive in a comment group.
func directivesInGroup(g *ast.CommentGroup) []*Directive {
	if g == nil {
		return nil
	}
	var out []*Directive
	for _, c := range g.List {
		text := c.Text
		switch {
		case strings.HasPrefix(text, "//"):
			if d := parseDirective(c.Pos(), strings.TrimPrefix(strings.TrimPrefix(text, "//"), " ")); d != nil {
				out = append(out, d)
			}
		case strings.HasPrefix(text, "/*"):
			body := strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
			for _, line := range strings.Split(body, "\n") {
				if d := parseDirective(c.Pos(), strings.TrimSpace(line)); d != nil {
					out = append(out, d)
				}
			}
		}
	}
	return out
}
