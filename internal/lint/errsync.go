package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"dtdevolve/internal/lint/analysis"
)

// ErrsyncAnalyzer is a scoped errcheck for the durability layer: in
// packages opted in with "dtdvet:strict errsync", the error results of
// Sync, Close, Write, WriteString, Flush and Truncate must not be
// discarded — not in an expression statement, not assigned to blank, and
// not hidden behind a bare "defer f.Close()". A dropped fsync error is
// the classic silent-corruption bug: the write-ahead log reports the
// record durable when the kernel has already told us it is not
// (DESIGN.md §10). Call sites where discarding is genuinely correct
// (closing a read-only file, teardown after a successful Sync) carry
// "dtdvet:allow errsync -- <why>" with the reason in the source.
var ErrsyncAnalyzer = &analysis.Analyzer{
	Name: "errsync",
	Doc:  "forbid discarded Sync/Close/Write errors in packages marked dtdvet:strict errsync",
	Run:  runErrsync,
}

// watchedMethods are the durability-critical method names.
var watchedMethods = map[string]bool{
	"Sync":        true,
	"Close":       true,
	"Write":       true,
	"WriteString": true,
	"Flush":       true,
	"Truncate":    true,
}

func runErrsync(pass *analysis.Pass) error {
	fx := build(pass)
	if !fx.strict["errsync"] {
		return nil
	}
	for _, decl := range fx.funcs {
		es := &errsyncScanner{fx: fx, fn: fx.funcObj(decl)}
		ast.Inspect(decl.Body, es.visit)
	}
	return nil
}

type errsyncScanner struct {
	fx *facts
	fn *types.Func
}

func (es *errsyncScanner) report(pos token.Pos, format string, args ...any) {
	if es.fx.allowed("errsync", es.fn, pos) {
		return
	}
	es.fx.pass.Reportf(pos, format, args...)
}

// watched resolves a call to a durability-critical method returning an
// error, and describes it for the diagnostic.
func (es *errsyncScanner) watched(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !watchedMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := es.fx.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	desc := sel.Sel.Name
	if recv := sig.Recv(); recv != nil {
		desc = types.TypeString(recv.Type(), types.RelativeTo(es.fx.pass.Pkg)) + "." + desc
	}
	return desc, true
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// errIndices returns which results of sig have type error.
func errIndices(sig *types.Signature) []int {
	var out []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			out = append(out, i)
		}
	}
	return out
}

func (es *errsyncScanner) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if desc, ok := es.watched(call); ok {
				es.report(call.Pos(), "error from %s is discarded (dtdvet:strict errsync); handle it or annotate dtdvet:allow errsync", desc)
			}
		}
	case *ast.DeferStmt:
		if desc, ok := es.watched(n.Call); ok {
			es.report(n.Pos(), "deferred %s discards its error (dtdvet:strict errsync); capture it into a named return or annotate dtdvet:allow errsync", desc)
		}
	case *ast.GoStmt:
		if desc, ok := es.watched(n.Call); ok {
			es.report(n.Pos(), "error from %s is discarded by the go statement (dtdvet:strict errsync)", desc)
		}
	case *ast.AssignStmt:
		es.assign(n)
	}
	return true
}

// assign flags "_ = f.Sync()" and "n, _ := f.Write(b)": a watched call
// whose error result lands in the blank identifier.
func (es *errsyncScanner) assign(st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		// a, b = x.Close(), y — each RHS maps 1:1 to an LHS
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if desc, ok := es.watched(call); ok && isBlank(st.Lhs[i]) {
				es.report(call.Pos(), "error from %s is assigned to _ (dtdvet:strict errsync)", desc)
			}
		}
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	desc, ok := es.watched(call)
	if !ok {
		return
	}
	sig, ok := es.fx.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	if len(st.Lhs) == 1 {
		if isBlank(st.Lhs[0]) {
			es.report(call.Pos(), "error from %s is assigned to _ (dtdvet:strict errsync)", desc)
		}
		return
	}
	for _, i := range errIndices(sig) {
		if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
			es.report(call.Pos(), "error result of %s is assigned to _ (dtdvet:strict errsync)", desc)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
