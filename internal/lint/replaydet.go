package lint

import (
	"go/ast"
	"go/types"

	"dtdevolve/internal/lint/analysis"
)

// ReplaydetAnalyzer enforces determinism on replay-reachable code: every
// function reachable through same-package calls from a function marked
// "dtdvet:replayroot" (the WAL apply dispatch, snapshot and journal
// encoders) must not consult the wall clock (time.Now/Since/Until), draw
// randomness (math/rand, math/rand/v2), or iterate a map — Go randomizes
// map order per run, so any bytes or state derived from a bare range
// diverge between the primary and a replica replaying the same stream.
// This is the invariant PR 8's replication rests on: recovery and
// followers must reproduce the primary's state byte-for-byte from the
// journaled records alone (DESIGN.md §10, §14).
//
// Map ranges whose results are sorted before use, and clock reads that
// feed only metrics, are suppressed at the site with
// "dtdvet:allow replaydet -- <why>". The reachability is same-package
// only (the framework has no cross-package facts); each package declares
// its own roots.
var ReplaydetAnalyzer = &analysis.Analyzer{
	Name: "replaydet",
	Doc:  "forbid clock reads, randomness and map-order iteration in code reachable from dtdvet:replayroot entry points",
	Run:  runReplaydet,
}

func runReplaydet(pass *analysis.Pass) error {
	fx := build(pass)
	if len(fx.replayroot) == 0 {
		return nil
	}

	// Reachability: breadth-first over same-package calls from the roots.
	// via remembers which root first reached each function, for the
	// diagnostic.
	via := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for fn := range fx.replayroot {
		via[fn] = fn
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		decl := fx.decls[fn]
		if decl == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := fx.calleeOf(call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, seen := via[callee]; !seen {
				via[callee] = via[fn]
				queue = append(queue, callee)
			}
			return true
		})
	}

	for _, decl := range fx.funcs {
		fn := fx.funcObj(decl)
		root, reachable := via[fn]
		if fn == nil || !reachable {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				what := nondeterministicCall(fx, n)
				if what == "" {
					return true
				}
				if fx.allowed("replaydet", fn, n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"call to %s in replay-reachable code (%s is reachable from dtdvet:replayroot %s); replayed state must be deterministic (dtdvet:replaydet)",
					what, fn.Name(), root.Name())
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if fx.allowed("replaydet", fn, n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"map iteration in replay-reachable code (%s is reachable from dtdvet:replayroot %s); map order is nondeterministic — sort the keys, or annotate dtdvet:allow replaydet if order cannot escape (dtdvet:replaydet)",
					fn.Name(), root.Name())
			}
			return true
		})
	}
	return nil
}

// nondeterministicCall describes a call whose result varies between runs
// ("" when the call is deterministic): the wall clock and the rand
// packages.
func nondeterministicCall(fx *facts, call *ast.CallExpr) string {
	callee := fx.calleeOf(call)
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	switch callee.Pkg().Path() {
	case "time":
		switch callee.Name() {
		case "Now", "Since", "Until":
			return "time." + callee.Name()
		}
	case "math/rand", "math/rand/v2":
		return callee.Pkg().Path() + "." + callee.Name()
	}
	return ""
}
