// Package analysis is a minimal, dependency-free core of the
// golang.org/x/tools/go/analysis model: an Analyzer inspects one
// type-checked package at a time and reports position-anchored
// diagnostics. The repository's vendoring policy (no modules beyond the
// standard library) rules out the upstream framework, so cmd/dtdvet
// implements the same `go vet -vettool` contract on top of this package
// instead. The subset is deliberate: no cross-package facts, no
// sub-analyzer requirements, no suggested fixes — the dtdvet analyzers
// need none of them, and everything here runs against a plain
// (*types.Package, *types.Info) pair produced by any loader.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "dtdvet:allow <name>" suppression directives. It must be a single
	// lowercase word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the package held by pass and reports findings through
	// pass.Report. A returned error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver fills Diagnostic.Analyzer.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Run executes each analyzer over the package and returns the collected
// diagnostics sorted by position then message, deduplicated.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// LoadDir parses and type-checks every .go file of one directory as a
// single package, resolving imports from source (standard library only).
// In-package _test.go files are included, mirroring how `go vet` presents
// a package's test variant — the analyzers themselves decide how to treat
// test files. It is the loader behind the linttest fixture harness; the
// vettool path in cmd/dtdvet type-checks from export data instead.
func LoadDir(fset *token.FileSet, dir, path string) ([]*ast.File, *types.Package, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}
