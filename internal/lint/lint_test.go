package lint_test

import (
	"testing"

	"dtdevolve/internal/lint"
	"dtdevolve/internal/lint/linttest"
)

func TestLocks(t *testing.T) {
	linttest.Run(t, "testdata", "locksfix", lint.LocksAnalyzer)
}

func TestJournal(t *testing.T) {
	linttest.Run(t, "testdata", "journalfix", lint.JournalAnalyzer)
}

func TestNoalloc(t *testing.T) {
	linttest.Run(t, "testdata", "noallocfix", lint.NoallocAnalyzer)
}

func TestErrsync(t *testing.T) {
	linttest.Run(t, "testdata", "errsyncfix", lint.ErrsyncAnalyzer)
}

func TestErrsyncWithoutOptIn(t *testing.T) {
	linttest.Run(t, "testdata", "errsyncoff", lint.ErrsyncAnalyzer)
}

func TestDirective(t *testing.T) {
	linttest.Run(t, "testdata", "directivefix", lint.DirectiveAnalyzer)
}

func TestReplaydet(t *testing.T) {
	linttest.Run(t, "testdata", "replayfix", lint.ReplaydetAnalyzer)
}

func TestGolife(t *testing.T) {
	linttest.Run(t, "testdata", "golifefix", lint.GolifeAnalyzer)
}

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, "testdata", "atomicmixfix", lint.AtomicmixAnalyzer)
}

func TestRetrybound(t *testing.T) {
	linttest.Run(t, "testdata", "retryboundfix", lint.RetryboundAnalyzer)
}

// TestStrictOptInGates pins the opt-in gates: the strictoff fixture
// contains a leaked goroutine and a constant-sleep spin but opts into
// nothing, so golife and retrybound must stay silent there.
func TestStrictOptInGates(t *testing.T) {
	linttest.Run(t, "testdata", "strictoff", lint.GolifeAnalyzer, lint.RetryboundAnalyzer)
}

// TestSuiteOnCleanFixture runs every analyzer at once over the package
// that uses the directives correctly end to end: the suite must agree
// with the fixture's want set exactly (locksfix wants are all locks
// findings, and no other analyzer adds noise).
func TestSuiteOnCleanFixture(t *testing.T) {
	linttest.Run(t, "testdata", "locksfix", lint.Analyzers()...)
}
