package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"dtdevolve/internal/lint/analysis"
)

// JournalAnalyzer enforces write-ahead journaling on types marked with
// the journaled directive: every exported method that (transitively,
// through same-package calls) writes a guarded field must reach a
// journalpoint-annotated call before the first such write, or carry an
// explicit "dtdvet:nojournal -- reason" exemption. This is the invariant
// WAL recovery rests on — replay reproduces exactly the state mutations
// that were journaled, so a mutation that skips the journal silently
// diverges the recovered state (DESIGN.md §10) — and it is precisely the
// kind of invariant a reviewer forgets: adding one exported setter to
// Source without a journalLocked call compiles, passes unit tests, and
// loses data on the first crash.
//
// The check is a source-order first-event analysis: scanning the method's
// statements (descending into same-package callees, memoized), the first
// event found is either a journal append — the method is compliant — or a
// guarded write, which is the finding. Closure and goroutine bodies are
// included conservatively.
var JournalAnalyzer = &analysis.Analyzer{
	Name: "journal",
	Doc:  "check that exported methods of journaled types append a WAL record before mutating guarded state",
	Run:  runJournal,
}

// jsum is a function's first-event summary.
type jsum int

const (
	jNeither  jsum = iota // no journal append, no guarded write
	jJournals             // appends a journal record before any guarded write
	jWrites               // writes guarded state before any journal append
)

func runJournal(pass *analysis.Pass) error {
	fx := build(pass)
	if len(fx.journaled) == 0 {
		return nil
	}
	js := &jscanner{
		fx:       fx,
		memo:     make(map[*types.Func]jsum),
		active:   make(map[*types.Func]bool),
		writePos: make(map[*types.Func]token.Pos),
		writeVia: make(map[*types.Func]string),
	}
	for _, decl := range fx.funcs {
		fn := fx.funcObj(decl)
		if fn == nil || !fn.Exported() || fx.nojournal[fn] || fx.journalpoint[fn] {
			continue
		}
		recv := receiverType(fn)
		if recv == nil || !fx.journaled[recv] {
			continue
		}
		if js.summary(fn) == jWrites {
			if fx.allowed("journal", fn, decl.Pos()) {
				continue
			}
			pass.Reportf(js.writePos[fn],
				"exported method %s.%s mutates journaled state (%s) before any journal append (dtdvet:journal); append the WAL record first or annotate dtdvet:nojournal",
				recv.Name(), fn.Name(), js.writeVia[fn])
		}
	}
	return nil
}

// receiverType returns the named type a method's receiver is declared on.
func receiverType(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

type jscanner struct {
	fx       *facts
	memo     map[*types.Func]jsum
	active   map[*types.Func]bool
	writePos map[*types.Func]token.Pos
	writeVia map[*types.Func]string // what the first write was, for the message
}

// summary computes fn's first-event class, memoized.
func (j *jscanner) summary(fn *types.Func) jsum {
	if j.fx.journalpoint[fn] {
		return jJournals
	}
	if j.fx.nojournal[fn] {
		// Its writes are vouched for by its own directive; callers are
		// neither journaled nor blamed by calling it.
		return jNeither
	}
	if s, ok := j.memo[fn]; ok {
		return s
	}
	if j.active[fn] {
		return jNeither // recursion: stay conservative
	}
	decl := j.fx.decls[fn]
	if decl == nil {
		return jNeither // other package, or no body
	}
	j.active[fn] = true
	s := j.scanStmts(decl.Body.List, fn)
	delete(j.active, fn)
	j.memo[fn] = s
	return s
}

func (j *jscanner) scanStmts(list []ast.Stmt, fn *types.Func) jsum {
	for _, st := range list {
		if s := j.scanNode(st, fn); s != jNeither {
			return s
		}
	}
	return jNeither
}

// scanNode walks one statement (or expression subtree) in source order
// and returns the first journal/write event found.
func (j *jscanner) scanNode(n ast.Node, fn *types.Func) jsum {
	var found jsum
	ast.Inspect(n, func(n ast.Node) bool {
		if found != jNeither {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Argument expressions evaluate before the call; Inspect's
			// preorder visit handles Fun first, which only matters for
			// method values on guarded fields — reads, not events.
			if callee := j.fx.calleeOf(n); callee != nil {
				switch j.summary(callee) {
				case jJournals:
					found = jJournals
					return false
				case jWrites:
					found = jWrites
					j.writePos[fn] = n.Pos()
					j.writeVia[fn] = "via " + callee.Name()
					return false
				}
			}
		case *ast.AssignStmt:
			// RHS evaluates before the LHS store.
			for _, rhs := range n.Rhs {
				if s := j.scanNode(rhs, fn); s != jNeither {
					found = s
					return false
				}
			}
			for _, lhs := range n.Lhs {
				if sel := j.guardedTarget(lhs); sel != nil {
					found = jWrites
					j.writePos[fn] = sel.Pos()
					j.writeVia[fn] = "write to " + sel.Sel.Name
					return false
				}
				if s := j.scanNode(lhs, fn); s != jNeither {
					found = s
					return false
				}
			}
			return false
		case *ast.IncDecStmt:
			if sel := j.guardedTarget(n.X); sel != nil {
				found = jWrites
				j.writePos[fn] = sel.Pos()
				j.writeVia[fn] = "write to " + sel.Sel.Name
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel := j.guardedTarget(n.X); sel != nil {
					found = jWrites
					j.writePos[fn] = sel.Pos()
					j.writeVia[fn] = "address of " + sel.Sel.Name
					return false
				}
			}
		}
		return true
	})
	return found
}

// guardedTarget resolves a store target down to a guarded field selector:
// s.f, s.f[k], *s.f, with parens. Returns nil when the target is not
// guarded state.
func (j *jscanner) guardedTarget(e ast.Expr) *ast.SelectorExpr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.SelectorExpr:
			if fieldObj := j.fx.selectedField(t); fieldObj != nil {
				if _, ok := j.fx.guards[fieldObj]; ok {
					return t
				}
			}
			return nil
		default:
			return nil
		}
	}
}
