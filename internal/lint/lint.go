// Package lint implements dtdvet, the repository's static-analysis suite:
// custom analyzers that machine-check the invariants the engine's
// correctness rests on — lock discipline around the Source state,
// journal-before-mutate in the durability layer, allocation-free hot
// paths, never-dropped fsync errors, determinism of replay-reachable
// code, goroutine shutdown discipline, consistent sync/atomic access,
// and jittered retry backoff. The analyzers run over one
// type-checked package at a time (see the analysis subpackage) and are
// driven by cmd/dtdvet through the standard `go vet -vettool` contract.
//
// Invariants are declared in the code as structured comments (see
// directive.go for the grammar); this file binds those comments to the
// declarations they annotate and resolves them against the type
// information, producing the per-package fact tables every analyzer
// consumes.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dtdevolve/internal/lint/analysis"
)

// Analyzers returns the dtdvet suite in its fixed execution order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DirectiveAnalyzer,
		LocksAnalyzer,
		JournalAnalyzer,
		NoallocAnalyzer,
		ErrsyncAnalyzer,
		ReplaydetAnalyzer,
		GolifeAnalyzer,
		AtomicmixAnalyzer,
		RetryboundAnalyzer,
	}
}

// lockKey identifies a mutex: the struct type owning it and the field
// name. Lock state is tracked per key, not per instance — locking one
// *Source and touching another is beyond a syntactic checker, and does
// not occur in this codebase.
type lockKey struct {
	typ   *types.TypeName
	field string
}

func (k lockKey) String() string {
	if k.typ == nil {
		return k.field
	}
	return k.typ.Name() + "." + k.field
}

// lockReq is one requires-directive obligation: the lock, and whether the
// write side is needed (false: the read side of an RWMutex suffices).
type lockReq struct {
	key   lockKey
	write bool
}

type lineKey struct {
	file string
	line int
}

// facts is everything the analyzers need to know about one package's
// directives, resolved against its type information.
type facts struct {
	pass *analysis.Pass

	// guards maps a struct field to the mutex that must be held to touch
	// it (dtdvet:guarded_by).
	guards map[*types.Var]lockKey
	// mutexes maps every sync.Mutex/RWMutex field declared in this
	// package to its key, and records whether it is an RWMutex.
	mutexes map[*types.Var]lockKey
	rw      map[lockKey]bool
	// requires maps a function to the locks its callers must hold.
	requires map[*types.Func][]lockReq
	// noalloc, journalpoint, nojournal, journaled, replayroot mark
	// annotated decls.
	noalloc      map[*types.Func]bool
	journalpoint map[*types.Func]bool
	nojournal    map[*types.Func]bool
	journaled    map[*types.TypeName]bool
	replayroot   map[*types.Func]bool
	// allowFn and allowLine are suppressions: per function body, or per
	// source line (trailing comment).
	allowFn   map[*types.Func]map[string]bool
	allowLine map[lineKey]map[string]bool
	// strict holds package-wide opt-ins (dtdvet:strict); retry is the
	// package-wide retrybound opt-in (dtdvet:retry).
	strict map[string]bool
	retry  bool

	// funcs lists every function declaration with a body in non-test
	// files, with decls as the reverse index.
	funcs []*ast.FuncDecl
	decls map[*types.Func]*ast.FuncDecl

	// bad collects malformed, misattached or unresolvable directives.
	bad []*Directive
}

// build resolves the package's directives. Test files contribute no
// directives and are not analyzed (the invariants guard production code;
// white-box tests legitimately reach into unexported state).
func build(pass *analysis.Pass) *facts {
	fx := &facts{
		pass:         pass,
		guards:       make(map[*types.Var]lockKey),
		mutexes:      make(map[*types.Var]lockKey),
		rw:           make(map[lockKey]bool),
		requires:     make(map[*types.Func][]lockReq),
		noalloc:      make(map[*types.Func]bool),
		journalpoint: make(map[*types.Func]bool),
		nojournal:    make(map[*types.Func]bool),
		journaled:    make(map[*types.TypeName]bool),
		replayroot:   make(map[*types.Func]bool),
		allowFn:      make(map[*types.Func]map[string]bool),
		allowLine:    make(map[lineKey]map[string]bool),
		strict:       make(map[string]bool),
		decls:        make(map[*types.Func]*ast.FuncDecl),
	}
	for _, f := range pass.Files {
		if fx.isTestFile(f) {
			continue
		}
		fx.indexMutexes(f)
	}
	for _, f := range pass.Files {
		if fx.isTestFile(f) {
			continue
		}
		fx.bindFile(f)
	}
	return fx
}

func (fx *facts) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(fx.pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// mutexKind reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func mutexKind(t types.Type) (rw, ok bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// indexMutexes records every mutex field of every struct declared in f.
func (fx *facts) indexMutexes(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		tn, ok := fx.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				obj, ok := fx.pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if rw, isMu := mutexKind(obj.Type()); isMu {
					key := lockKey{typ: tn, field: name.Name}
					fx.mutexes[obj] = key
					fx.rw[key] = rw
				}
			}
		}
		return true
	})
}

// bindFile walks one file's declarations, attaching directives found in
// doc and trailing comments, then sweeps the remaining comment groups for
// floating directives (line-level allow, package-level strict).
func (fx *facts) bindFile(f *ast.File) {
	attached := make(map[*ast.CommentGroup]bool)

	var bindType func(ts *ast.TypeSpec, doc *ast.CommentGroup)
	bindType = func(ts *ast.TypeSpec, doc *ast.CommentGroup) {
		for _, g := range []*ast.CommentGroup{doc, ts.Comment} {
			if g == nil {
				continue
			}
			attached[g] = true
			for _, d := range directivesInGroup(g) {
				fx.bindTypeDirective(d, ts)
			}
		}
		if st, ok := ts.Type.(*ast.StructType); ok {
			for _, field := range st.Fields.List {
				for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if g == nil {
						continue
					}
					attached[g] = true
					for _, d := range directivesInGroup(g) {
						fx.bindFieldDirective(d, ts, field)
					}
				}
			}
		}
	}

	for _, decl := range f.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			if decl.Body != nil {
				fx.funcs = append(fx.funcs, decl)
				if fn, ok := fx.pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
					fx.decls[fn] = decl
				}
			}
			if decl.Doc == nil {
				continue
			}
			attached[decl.Doc] = true
			for _, d := range directivesInGroup(decl.Doc) {
				fx.bindFuncDirective(d, decl)
			}
		case *ast.GenDecl:
			soleType := len(decl.Specs) == 1
			for _, spec := range decl.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					doc := ts.Doc
					if doc == nil && soleType {
						doc = decl.Doc
					}
					bindType(ts, doc)
				}
			}
		}
	}

	// Everything not claimed above is a floating comment: valid for
	// strict (package scope) and allow (scoped to its own source line).
	for _, g := range f.Comments {
		if attached[g] {
			continue
		}
		for _, d := range directivesInGroup(g) {
			fx.bindFloatingDirective(d)
		}
	}
}

func (fx *facts) bindFuncDirective(d *Directive, decl *ast.FuncDecl) {
	d.attached = true
	if d.Err != "" {
		fx.bad = append(fx.bad, d)
		return
	}
	fn, ok := fx.pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	switch d.Verb {
	case "requires":
		req, errText := fx.resolveLockRef(d.Args[0], fn)
		if errText != "" {
			d.Err = errText
			fx.bad = append(fx.bad, d)
			return
		}
		fx.requires[fn] = append(fx.requires[fn], req)
	case "noalloc":
		fx.noalloc[fn] = true
	case "journalpoint":
		fx.journalpoint[fn] = true
	case "nojournal":
		fx.nojournal[fn] = true
	case "replayroot":
		fx.replayroot[fn] = true
	case "allow":
		m := fx.allowFn[fn]
		if m == nil {
			m = make(map[string]bool)
			fx.allowFn[fn] = m
		}
		m[d.Args[0]] = true
	case "strict":
		fx.strict[d.Args[0]] = true
	default:
		d.Err = fmt.Sprintf("directive %s%s cannot annotate a function", Prefix, d.Verb)
		fx.bad = append(fx.bad, d)
	}
}

func (fx *facts) bindTypeDirective(d *Directive, ts *ast.TypeSpec) {
	d.attached = true
	if d.Err != "" {
		fx.bad = append(fx.bad, d)
		return
	}
	switch d.Verb {
	case "journaled":
		if tn, ok := fx.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
			fx.journaled[tn] = true
		}
	case "strict":
		fx.strict[d.Args[0]] = true
	default:
		d.Err = fmt.Sprintf("directive %s%s cannot annotate a type", Prefix, d.Verb)
		fx.bad = append(fx.bad, d)
	}
}

func (fx *facts) bindFieldDirective(d *Directive, ts *ast.TypeSpec, field *ast.Field) {
	d.attached = true
	if d.Err != "" {
		fx.bad = append(fx.bad, d)
		return
	}
	if d.Verb != "guarded_by" {
		d.Err = fmt.Sprintf("directive %s%s cannot annotate a struct field", Prefix, d.Verb)
		fx.bad = append(fx.bad, d)
		return
	}
	tn, ok := fx.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	key := lockKey{typ: tn, field: d.Args[0]}
	if _, isMu := fx.rw[key]; !isMu {
		d.Err = fmt.Sprintf("guarded_by names %s, which is not a sync.Mutex or sync.RWMutex field of %s", d.Args[0], tn.Name())
		fx.bad = append(fx.bad, d)
		return
	}
	for _, name := range field.Names {
		if obj, ok := fx.pass.TypesInfo.Defs[name].(*types.Var); ok {
			fx.guards[obj] = key
		}
	}
}

func (fx *facts) bindFloatingDirective(d *Directive) {
	if d.Err != "" {
		fx.bad = append(fx.bad, d)
		return
	}
	switch d.Verb {
	case "strict":
		fx.strict[d.Args[0]] = true
	case "retry":
		fx.retry = true
	case "allow":
		pos := fx.pass.Fset.Position(d.Pos)
		lk := lineKey{file: pos.Filename, line: pos.Line}
		m := fx.allowLine[lk]
		if m == nil {
			m = make(map[string]bool)
			fx.allowLine[lk] = m
		}
		m[d.Args[0]] = true
	default:
		d.Err = fmt.Sprintf("directive %s%s must be attached to a declaration (put it in the doc comment)", Prefix, d.Verb)
		fx.bad = append(fx.bad, d)
	}
}

// resolveLockRef resolves a requires argument ("mu", "mu:r", "Type.mu",
// "Type.mu:r") against fn's receiver and the package scope.
func (fx *facts) resolveLockRef(ref string, fn *types.Func) (lockReq, string) {
	req := lockReq{write: true}
	if rest, ok := strings.CutSuffix(ref, ":r"); ok {
		req.write = false
		ref = rest
	}
	var tn *types.TypeName
	field := ref
	if typeName, fieldName, qualified := strings.Cut(ref, "."); qualified {
		obj, ok := fx.pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			return req, fmt.Sprintf("requires references unknown type %s", typeName)
		}
		tn, field = obj, fieldName
	} else {
		sig := fn.Type().(*types.Signature)
		recv := sig.Recv()
		if recv == nil {
			return req, "unqualified requires on a non-method; use dtdvet:requires Type.field"
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return req, "receiver is not a named type"
		}
		tn = named.Obj()
	}
	req.key = lockKey{typ: tn, field: field}
	if _, isMu := fx.rw[req.key]; !isMu {
		return req, fmt.Sprintf("requires names %s, which is not a sync.Mutex or sync.RWMutex field", req.key)
	}
	return req, ""
}

// allowed reports whether a finding of the named analyzer is suppressed
// at pos — by an allow directive in the enclosing function's doc comment
// (fn may be nil) or trailing the offending line.
func (fx *facts) allowed(analyzer string, fn *types.Func, pos token.Pos) bool {
	if fn != nil && fx.allowFn[fn][analyzer] {
		return true
	}
	p := fx.pass.Fset.Position(pos)
	return fx.allowLine[lineKey{file: p.Filename, line: p.Line}][analyzer]
}

// funcObj returns the *types.Func for a declaration, or nil.
func (fx *facts) funcObj(decl *ast.FuncDecl) *types.Func {
	fn, _ := fx.pass.TypesInfo.Defs[decl.Name].(*types.Func)
	return fn
}

// selectedField resolves a selector expression to the field object it
// reads or writes, or nil when it is not a field selection.
func (fx *facts) selectedField(sel *ast.SelectorExpr) *types.Var {
	if obj, ok := fx.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
		return obj
	}
	return nil
}

// calleeOf resolves the function or method a call invokes, or nil for
// builtins, conversions and indirect calls through function values.
func (fx *facts) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := fx.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := fx.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// mutexOp describes a recognized x.<mu>.Lock/Unlock/RLock/RUnlock call.
type mutexOp struct {
	key   lockKey
	op    string // "Lock", "Unlock", "RLock", "RUnlock"
	valid bool
}

// asMutexOp recognizes a call as a mutex operation on a mutex field
// indexed in this package.
func (fx *facts) asMutexOp(call *ast.CallExpr) mutexOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return mutexOp{}
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}
	}
	fieldObj := fx.selectedField(inner)
	if fieldObj == nil {
		return mutexOp{}
	}
	key, ok := fx.mutexes[fieldObj]
	if !ok {
		return mutexOp{}
	}
	return mutexOp{key: key, op: sel.Sel.Name, valid: true}
}
