package xtract

import (
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

func docs(t *testing.T, srcs ...string) []*xmltree.Document {
	t.Helper()
	out := make([]*xmltree.Document, len(srcs))
	for i, src := range srcs {
		doc, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out[i] = doc
	}
	return out
}

func TestInferErrors(t *testing.T) {
	if _, err := Infer(nil); err == nil {
		t.Error("no documents accepted")
	}
	if _, err := Infer(docs(t, `<a/>`, `<b/>`)); err == nil {
		t.Error("mixed roots accepted")
	}
}

func TestInferSimpleSequence(t *testing.T) {
	d, err := Infer(docs(t,
		`<r><a/><b/></r>`,
		`<r><a/><b/></r>`,
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["r"].String(); got != "(a, b)" {
		t.Errorf("r = %s, want (a, b)", got)
	}
	if got := d.Elements["a"].String(); got != "EMPTY" {
		t.Errorf("a = %s, want EMPTY", got)
	}
}

func TestInferRepetitionGeneralization(t *testing.T) {
	d, err := Infer(docs(t,
		`<r><item/><item/><item/></r>`,
		`<r><item/></r>`,
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["r"]; !got.Equal(dtd.NewPlus(dtd.NewName("item"))) {
		t.Errorf("r = %s, want item+", got)
	}
}

func TestInferOptionality(t *testing.T) {
	d, err := Infer(docs(t,
		`<r><a/><b/></r>`,
		`<r><a/></r>`,
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["r"].String(); got != "(a, b?)" {
		t.Errorf("r = %s, want (a, b?)", got)
	}
}

func TestInferPCDATAAndMixed(t *testing.T) {
	d, err := Infer(docs(t,
		`<r><t>hello</t><m>x <b>y</b></m></r>`,
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["t"].String(); got != "(#PCDATA)" {
		t.Errorf("t = %s", got)
	}
	if got := d.Elements["m"].String(); got != "(#PCDATA | b)*" {
		t.Errorf("m = %s", got)
	}
}

func TestInferFallsBackToGeneralForm(t *testing.T) {
	// Wildly conflicting orders: no sequence candidate fits.
	d, err := Infer(docs(t,
		`<r><a/><b/><c/></r>`,
		`<r><c/><b/><a/></r>`,
		`<r><b/><a/><c/><a/></r>`,
	))
	if err != nil {
		t.Fatal(err)
	}
	model := d.Elements["r"]
	v := validate.New(d)
	for _, doc := range docs(t, `<r><a/><b/><c/></r>`, `<r><c/><b/><a/></r>`, `<r><b/><a/><c/><a/></r>`) {
		if vs := v.ValidateDocument(doc); len(vs) != 0 {
			t.Errorf("inferred %s rejects input doc: %v", model, vs)
		}
	}
}

// TestInferredDTDAcceptsCorpus is the precision property of XTRACT: the
// inferred DTD accepts every document it was derived from.
func TestInferredDTDAcceptsCorpus(t *testing.T) {
	truth := dtd.MustParse(`
<!ELEMENT doc (head, section+)>
<!ELEMENT head (title, meta*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT section (heading?, (para | list)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>`)
	truth.Name = "doc"
	g := gen.New(gen.DefaultConfig(99))
	corpus := g.Documents(truth, 100)
	inferred, err := Infer(corpus)
	if err != nil {
		t.Fatal(err)
	}
	v := validate.New(inferred)
	for i, doc := range corpus {
		if vs := v.ValidateDocument(doc); len(vs) != 0 {
			t.Fatalf("doc %d rejected by inferred DTD: %v\n%s", i, vs, inferred)
		}
	}
}

func TestInferConciseness(t *testing.T) {
	// The inferred model must generalize, not enumerate: 50 docs with 1..3
	// items yield item+ (or equivalent), not a 50-way OR.
	var srcs []string
	for i := 0; i < 50; i++ {
		switch i % 3 {
		case 0:
			srcs = append(srcs, `<r><item/></r>`)
		case 1:
			srcs = append(srcs, `<r><item/><item/></r>`)
		default:
			srcs = append(srcs, `<r><item/><item/><item/></r>`)
		}
	}
	d, err := Infer(docs(t, srcs...))
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Elements["r"].NodeCount(); n > 3 {
		t.Errorf("r model too large (%d nodes): %s", n, d.Elements["r"])
	}
}
