// Package xtract implements a from-scratch DTD inference baseline in the
// spirit of XTRACT (Garofalakis et al., SIGMOD 2000), the related work the
// paper compares its incremental approach against (§5): given a set of
// documents (and nothing else), infer a DTD that is precise (accepts every
// input document) yet concise (generalizes repetitions and optionality
// instead of enumerating shapes).
//
// Unlike the paper's evolution approach, the baseline must re-analyze the
// whole corpus on every run — experiment E3 measures exactly that cost
// difference.
//
// The inference pipeline per element tag:
//
//  1. collect every instance's ordered child-tag sequence;
//  2. generalize runs (a a a b → a+ b) — XTRACT's repetition step;
//  3. build candidate models: the exact common sequence, a wrapped
//     sequence over the union of tags in dominant order, and the fully
//     general (t1 | ... | tn)*;
//  4. pick the first (most precise) candidate accepting every instance,
//     MDL-style preferring precision before generality, and simplify it
//     with the DTD rewriting rules.
package xtract

import (
	"errors"
	"sort"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

// Infer derives a DTD from a non-empty set of documents. All documents
// must share the same root tag, which becomes the DTD root.
func Infer(docs []*xmltree.Document) (*dtd.DTD, error) {
	roots := make([]*xmltree.Node, 0, len(docs))
	for _, doc := range docs {
		if doc != nil && doc.Root != nil {
			roots = append(roots, doc.Root)
		}
	}
	return InferElements(roots)
}

// InferElements derives a DTD from document subtrees.
func InferElements(roots []*xmltree.Node) (*dtd.DTD, error) {
	if len(roots) == 0 {
		return nil, errors.New("xtract: no documents")
	}
	rootName := roots[0].Name
	for _, r := range roots[1:] {
		if r.Name != rootName {
			return nil, errors.New("xtract: documents have different root elements")
		}
	}
	inst := collect(roots)
	d := dtd.NewDTD(rootName)
	// Deterministic order: root first, then remaining tags sorted.
	tags := make([]string, 0, len(inst))
	for tag := range inst {
		if tag != rootName {
			tags = append(tags, tag)
		}
	}
	sort.Strings(tags)
	tags = append([]string{rootName}, tags...)
	for _, tag := range tags {
		d.Declare(tag, inferModel(inst[tag]))
	}
	return dtd.RewriteDTD(d), nil
}

// instance is one observed element occurrence.
type instance struct {
	tags    []string // ordered child tags
	hasText bool
}

func collect(roots []*xmltree.Node) map[string][]instance {
	out := make(map[string][]instance)
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		out[n.Name] = append(out[n.Name], instance{tags: n.ChildTags(), hasText: n.HasText()})
		for _, c := range n.ChildElements() {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// inferModel derives a content model for one element from its instances.
func inferModel(instances []instance) *dtd.Content {
	hasText, hasElems := false, false
	tagSet := make(map[string]bool)
	for _, in := range instances {
		if in.hasText {
			hasText = true
		}
		for _, t := range in.tags {
			hasElems = true
			tagSet[t] = true
		}
	}
	switch {
	case !hasElems && !hasText:
		return dtd.NewEmpty()
	case !hasElems:
		return dtd.NewPCDATA()
	case hasText:
		// Mixed content is the only DTD form admitting interleaved text.
		kids := []*dtd.Content{dtd.NewPCDATA()}
		for _, t := range sortedKeys(tagSet) {
			kids = append(kids, dtd.NewName(t))
		}
		return dtd.NewStar(dtd.NewChoice(kids...))
	}
	for _, candidate := range candidates(instances, tagSet) {
		if acceptsAll(candidate, instances) {
			return dtd.Rewrite(candidate)
		}
	}
	// Unreachable: the last candidate accepts everything.
	return dtd.NewAny()
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func acceptsAll(model *dtd.Content, instances []instance) bool {
	for _, in := range instances {
		if !validate.MatchModel(model, in.tags) {
			return false
		}
	}
	return true
}

// candidates returns candidate models from most precise to most general.
func candidates(instances []instance, tagSet map[string]bool) []*dtd.Content {
	var out []*dtd.Content
	if exact := exactCandidate(instances); exact != nil {
		out = append(out, exact)
	}
	out = append(out, wrappedSequenceCandidate(instances))
	// The fully general fallback always accepts.
	var alts []*dtd.Content
	for _, t := range sortedKeys(tagSet) {
		alts = append(alts, dtd.NewName(t))
	}
	if len(alts) == 1 {
		out = append(out, dtd.NewStar(alts[0]))
	} else {
		out = append(out, dtd.NewStar(dtd.NewChoice(alts...)))
	}
	return out
}

// run is a maximal run of one tag in a child sequence.
type run struct {
	tag      string
	repeated bool
}

func runs(tags []string) []run {
	var out []run
	for i := 0; i < len(tags); {
		j := i
		for j < len(tags) && tags[j] == tags[i] {
			j++
		}
		out = append(out, run{tag: tags[i], repeated: j-i > 1})
		i = j
	}
	return out
}

// exactCandidate generalizes runs and, when every instance collapses to the
// same run skeleton, emits it directly: XTRACT's repetition generalization.
func exactCandidate(instances []instance) *dtd.Content {
	first := runs(instances[0].tags)
	repeated := make([]bool, len(first))
	for _, in := range instances {
		rs := runs(in.tags)
		if len(rs) != len(first) {
			return nil
		}
		for i, r := range rs {
			if r.tag != first[i].tag {
				return nil
			}
			repeated[i] = repeated[i] || r.repeated
		}
	}
	kids := make([]*dtd.Content, len(first))
	for i, r := range first {
		c := dtd.NewName(r.tag)
		if repeated[i] {
			kids[i] = dtd.NewPlus(c)
		} else {
			kids[i] = c
		}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return dtd.NewSeq(kids...)
}

// wrappedSequenceCandidate orders the union of tags by mean first position
// and wraps each with ?, + or * according to presence and repetition.
func wrappedSequenceCandidate(instances []instance) *dtd.Content {
	type stat struct {
		present  int
		repeated bool
		posSum   float64
		posN     int
	}
	stats := make(map[string]*stat)
	for _, in := range instances {
		counts := make(map[string]int)
		for i, t := range in.tags {
			if counts[t] == 0 {
				s := stats[t]
				if s == nil {
					s = &stat{}
					stats[t] = s
				}
				s.present++
				s.posSum += float64(i)
				s.posN++
			}
			counts[t]++
		}
		for t, c := range counts {
			if c > 1 {
				stats[t].repeated = true
			}
		}
	}
	tags := make([]string, 0, len(stats))
	for t := range stats {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		pi := stats[tags[i]].posSum / float64(stats[tags[i]].posN)
		pj := stats[tags[j]].posSum / float64(stats[tags[j]].posN)
		if pi != pj {
			return pi < pj
		}
		return tags[i] < tags[j]
	})
	kids := make([]*dtd.Content, 0, len(tags))
	for _, t := range tags {
		s := stats[t]
		c := dtd.NewName(t)
		optional := s.present < len(instances)
		switch {
		case optional && s.repeated:
			c = dtd.NewStar(c)
		case s.repeated:
			c = dtd.NewPlus(c)
		case optional:
			c = dtd.NewOpt(c)
		}
		kids = append(kids, c)
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return dtd.NewSeq(kids...)
}
