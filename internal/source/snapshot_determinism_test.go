package source

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSnapshotBytesDeterministic pins the sorted-key emission in
// snapshotLocked: two independent restores of the same snapshot must
// produce byte-identical subsequent snapshots, and a restore must
// re-emit the exact bytes it was built from. Map-order-dependent
// emission would make checkpoint bytes diverge between otherwise
// identical processes, breaking follower checkpoint comparison.
func TestSnapshotBytesDeterministic(t *testing.T) {
	s := New(testConfig())
	runScript(t, s, durabilityScript)
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	a, err := Restore(testConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Restore(testConfig(), data)
	if err != nil {
		t.Fatal(err)
	}

	snapA, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Errorf("two restores of the same snapshot emit different bytes:\n a: %s\n b: %s", snapA, snapB)
	}
	if !bytes.Equal(snapA, data) {
		t.Errorf("restore does not round-trip snapshot bytes:\n restored: %s\n original: %s", snapA, data)
	}
}

// TestRestoreV1SnapshotDeterministic covers the pre-v2 path: a v1
// snapshot carries no symbol table, so Restore interns labels in DTD
// iteration order — which IS symbol-ID assignment order. Before Restore
// sorted its keys, two restores of the same v1 snapshot could assign
// different IDs and their next checkpoints would diverge byte-for-byte.
func TestRestoreV1SnapshotDeterministic(t *testing.T) {
	s := New(testConfig())
	runScript(t, s, durabilityScript)
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "version")
	delete(m, "symbols")
	delete(m, "signatures")
	v1, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}

	// Restore several times: with only a handful of DTDs, a map-order
	// bug still passes any single pair by luck often enough that one
	// comparison is a weak regression test.
	const restores = 8
	var first []byte
	for i := 0; i < restores; i++ {
		restored, err := Restore(testConfig(), v1)
		if err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
		snap, err := restored.Snapshot()
		if err != nil {
			t.Fatalf("restore %d snapshot: %v", i, err)
		}
		if first == nil {
			first = snap
			continue
		}
		if !bytes.Equal(snap, first) {
			t.Fatalf("restore %d of the same v1 snapshot emits different bytes:\n got:   %s\n first: %s", i, snap, first)
		}
	}
}
