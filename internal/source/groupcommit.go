// Group commit for the ingest hot path (DESIGN.md §8, §10).
//
// PR 3 made every commit journal — and, under SyncAlways, fsync — while
// holding the global write lock, so concurrent writers serialize behind
// the disk: throughput caps at ~1/fsync-latency documents per second no
// matter how many cores score documents in parallel. Group commit is the
// classic database answer: while one fsync is in flight, every commit that
// arrives queues up, and the next fsync covers them all.
//
// The scheme is leader/follower with no dedicated goroutine. A committing
// caller pre-serializes its journal payload *before* any lock, then
// enqueues a commitReq. The first enqueuer becomes the leader: it drains
// up to maxGroup requests, journals all their payloads with one batched
// WAL write (one mutex acquisition, one write) and applies every request's
// state changes under a single write-lock section, then releases the lock,
// runs the group's single fsync (wal.Flush) outside it — so readers score
// the next group while the disk round-trip is in flight — and only then
// closes the followers' done channels: acknowledgement strictly follows
// durability. A leader that found its own requests in the drained
// group hands leadership to the head of the remaining queue (promote
// channel) instead of draining forever, so a leader's latency is bounded
// by its own group, not by the arrival rate; the handoff happens after
// the flush, so the successor's group keeps filling for the whole disk
// round-trip and its size tracks fsync latency (see lead).
//
// Replay safety needs no group framing: the batched append leaves the
// exact byte stream sequential Appends would, payloads are in queue order,
// and groups serialize on the write lock, so WAL order is still commit
// order. A crash inside a group truncates to a record boundary and
// recovery replays exactly the journaled prefix; under SyncAlways none of
// the torn group's documents were acknowledged, because the group's fsync
// never returned.
package source

import (
	"encoding/json"
	"sync"
	"time"

	"dtdevolve/internal/classify"
	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

// DefaultMaxGroup bounds how many documents one leader journals in a
// single WAL batch when GroupCommitOptions.MaxGroup is zero.
const DefaultMaxGroup = 64

// GroupCommitOptions configures the group-commit coordinator.
type GroupCommitOptions struct {
	// MaxGroup bounds how many documents one leader commits (and journals
	// as one WAL batch). 0 means DefaultMaxGroup.
	MaxGroup int
	// MaxWait is how long a fresh leader waits for its group to fill
	// before draining. 0 drains immediately: the group is whatever queued
	// while the previous group was being written (natural batching), which
	// adds no latency and is the right default. A small positive value
	// trades single-writer latency for larger groups.
	MaxWait time.Duration
}

// EnableGroupCommit routes every subsequent Add/AddBatch commit through
// the group-commit coordinator. Enable it once, before serving traffic;
// it cannot be turned off. Recovery replay is unaffected: replayed
// operations re-enter Add one at a time and journal nothing.
func (s *Source) EnableGroupCommit(opts GroupCommitOptions) {
	if opts.MaxGroup <= 0 {
		opts.MaxGroup = DefaultMaxGroup
	}
	s.committer.Store(&groupCommitter{s: s, maxGroup: opts.MaxGroup, maxWait: opts.MaxWait})
}

// GroupCommitEnabled reports whether commits go through the group-commit
// coordinator.
func (s *Source) GroupCommitEnabled() bool { return s.committer.Load() != nil }

// commitReq is one document waiting to be committed: its read-locked
// classification, the generation it was scored at, and the pre-serialized
// journal payload (nil when no WAL was attached at scoring time). The
// leader fills res; done closes once the request is durable and applied;
// promote closes to hand the request's waiter leadership of the queue.
type commitReq struct {
	doc     *xmltree.Document
	cls     classify.Result
	gen     uint64
	payload []byte
	res     AddResult
	done    chan struct{}
	promote chan struct{}
}

func newCommitReq(doc *xmltree.Document, cls classify.Result, gen uint64, hasWAL bool) *commitReq {
	req := &commitReq{doc: doc, cls: cls, gen: gen, done: make(chan struct{}), promote: make(chan struct{})}
	if hasWAL {
		// Serialize off-lock: doc.String and the JSON encoding are the
		// expensive part of journaling, and they no longer hold up the
		// write lock. Marshalling a walOp (strings only) cannot fail; a
		// nil payload falls back to in-lock journaling, which reports the
		// failure through the degraded path.
		req.payload, _ = json.Marshal(walOp{Op: "doc", Text: doc.String()})
	}
	return req
}

// groupCommitter coordinates leader/follower commits for one Source. Its
// own mutex guards only the staging queue; committed state stays guarded
// by Source.mu exactly as before.
type groupCommitter struct {
	s        *Source
	maxGroup int
	maxWait  time.Duration

	mu      sync.Mutex
	queue   []*commitReq // dtdvet:guarded_by mu
	leading bool         // dtdvet:guarded_by mu
}

// submit enqueues reqs in FIFO order. If no leader is active the caller
// becomes it and returns only after all of reqs are durable and applied;
// otherwise submit returns immediately and the caller waits on each req.
// dtdvet:nojournal -- commit-queue staging: every queued document is journaled by commitGroup before its state changes apply
func (gc *groupCommitter) submit(reqs []*commitReq) {
	gc.mu.Lock()
	gc.queue = append(gc.queue, reqs...)
	gc.s.metrics.SetCommitQueueDepth(len(gc.queue))
	if gc.leading {
		gc.mu.Unlock()
		return
	}
	gc.leading = true
	gc.mu.Unlock()
	gc.lead(reqs[len(reqs)-1])
}

// wait blocks until req is committed, taking over as leader if the
// departing one hands this request the queue.
func (gc *groupCommitter) wait(req *commitReq) {
	// The cases are mutually exclusive: a promoted request is still queued,
	// stays queued until its own waiter leads (there is no other leader),
	// and a committed request is never promoted.
	select {
	case <-req.done:
	case <-req.promote:
		gc.lead(req)
		<-req.done
	}
}

// lead drains and commits groups until last (one of the caller's own
// requests, guaranteed to be queued) has been committed, then either
// clears leadership or hands it to the head of the remaining queue.
//
// The write lock is taken before draining, so nothing enqueued after the
// drain can sneak ahead of the group, and the write-lock section holds
// only the batched WAL write and the state applies — the group's fsync
// runs after the unlock, where it blocks neither readers (scoring the
// next group) nor writers (growing the queue). Leadership hands off only
// after that fsync: the full commit cycle of group k overlaps the filling
// of group k+1, which pushes the group size toward arrival-rate ×
// fsync-latency — the disk's actual capacity — instead of whatever raced
// in during a handoff gap.
// dtdvet:nojournal -- commit-queue staging: drained documents are journaled by commitGroupLocked before their state changes apply
func (gc *groupCommitter) lead(last *commitReq) {
	s := gc.s
	for {
		if gc.maxWait > 0 {
			time.Sleep(gc.maxWait) // let the group fill
		}
		commit := time.Now() // dtdvet:allow replaydet -- wall clock feeds commit-latency metrics only; never journaled or replayed
		s.mu.Lock()
		gc.mu.Lock()
		n := len(gc.queue)
		if n > gc.maxGroup {
			n = gc.maxGroup
		}
		group := make([]*commitReq, n)
		copy(group, gc.queue)
		gc.queue = append(gc.queue[:0], gc.queue[n:]...)
		s.metrics.SetCommitQueueDepth(len(gc.queue))
		owned := false
		for _, r := range group {
			if r == last {
				owned = true
			}
		}
		gc.mu.Unlock()

		flush := gc.commitGroupLocked(group)
		s.mu.Unlock()
		if flush != nil {
			// The group's fsync, after the write lock is released: readers
			// score the next group while the disk round-trip is in flight.
			// Acknowledgement still waits for it — done closes only after
			// Flush returns — so no document is acked before its record is
			// durable. On failure the source degrades exactly as an in-lock
			// sync failure would: the group stays applied in memory and the
			// serving layer stops accepting mutations.
			if err := flush.Flush(); err != nil {
				s.mu.Lock()
				if s.walErr == nil {
					s.walErr = err
					s.metrics.ObserveWALError()
				}
				s.mu.Unlock()
			}
		}
		if owned {
			// Hand off after the fsync, not at drain time: a successor
			// promoted any earlier would drain the moment the write lock
			// frees (before the disk round-trip) and commit a near-empty
			// group. Held until here, the queue keeps filling for the whole
			// flush, so group size tracks fsync latency — the disk's actual
			// capacity — instead of the write lock's occupancy. The promoted
			// request is still queued (this drain did not take it), so its
			// group is never empty.
			gc.mu.Lock()
			if len(gc.queue) > 0 {
				close(gc.queue[0].promote)
			} else {
				gc.leading = false
			}
			gc.mu.Unlock()
		}
		s.metrics.ObserveCommitPhase(time.Since(commit)) // dtdvet:allow replaydet -- metrics only
		for _, r := range group {
			close(r.done)
		}
		if owned {
			return
		}
	}
}

// commitGroupLocked journals and applies one drained group inside the
// leader's write-lock section: each document's payload is collected, its
// state changes apply in queue order (re-scored first when the DTD set
// changed after its read-locked scoring, exactly as the serial path
// re-scores), and any records the apply itself journals — auto-evolutions,
// trigger firings — are diverted into the same collection via the journal
// sink, landing between the doc that caused them and the next doc. One
// batched WAL write then covers the whole interleaved sequence, leaving
// the exact byte stream the serial path would have. The group's fsync is
// deliberately NOT in here: when one is owed (SyncAlways), the attached
// log is returned and the leader flushes it after releasing the write
// lock, before closing any done channel.
// dtdvet:requires Source.mu
func (gc *groupCommitter) commitGroupLocked(group []*commitReq) (flush *wal.Log) {
	s := gc.s
	payloads := make([][]byte, 0, len(group))
	s.journalSink = &payloads
	for _, r := range group {
		p := r.payload
		if p == nil && s.wal != nil && !s.replaying && s.walErr == nil {
			// The WAL was attached after this document was scored; encode
			// under the lock like the serial path would have.
			p = s.encodeOpLocked(walOp{Op: "doc", Text: r.doc.String()})
		}
		if p != nil && s.wal != nil && !s.replaying && s.walErr == nil {
			payloads = append(payloads, p)
		}
		if s.gen != r.gen {
			r.cls = s.classifier.Classify(r.doc)
		}
		r.res = s.applyCommitLocked(r.doc, r.cls)
		s.fireTriggers(&r.res)
	}
	s.journalSink = nil
	flush = s.journalBatchLocked(payloads)
	s.metrics.ObserveGroup(len(group))
	return flush
}
