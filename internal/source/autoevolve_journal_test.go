package source

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"dtdevolve/internal/wal"
	"dtdevolve/internal/wal/faultfs"
)

// driftWorkload drives a source through a workload that fires both an
// automatic threshold evolution and a trigger (evolve + reclassify): a DTD,
// a trigger rule, unclassified repository documents, then enough drifted
// articles to cross MinDocs and τ.
func driftWorkload(t *testing.T, s *Source) {
	t.Helper()
	s.AddDTD("article", articleDTD())
	if err := s.AddTriggerRule("on article when docs >= 4 and check_ratio > 0.1 do evolve, reclassify"); err != nil {
		t.Fatal(err)
	}
	s.Add(parseDoc(t, `<invoice><total>3</total></invoice>`))
	s.Add(parseDoc(t, `<invoice><total>4</total></invoice>`))
	for i := 0; i < 8; i++ {
		s.Add(parseDoc(t, `<article><title>t</title><author>a</author><body>b</body></article>`))
	}
}

// TestAutoEvolutionJournaledAndReplayed pins the auto-evolution journaling
// gap (DESIGN.md §14): decisions the check phase or a trigger makes during
// ingest are journaled as logical records of their own ("autoevolve",
// "autoreclassify"), and replay applies the recorded decisions rather than
// re-deriving them — so recovery reproduces the live state exactly, and a
// replay that skips the decision records derives nothing on its own.
func TestAutoEvolutionJournaledAndReplayed(t *testing.T) {
	for _, grouped := range []bool{false, true} {
		name := "serial"
		if grouped {
			name = "group-commit"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff})
			if err != nil {
				t.Fatal(err)
			}
			live := New(testConfig())
			if grouped {
				live.EnableGroupCommit(GroupCommitOptions{})
			}
			live.AttachWAL(w)
			driftWorkload(t, live)
			// Reclassified can stay 0 — the repository's invoices never
			// classify as articles — but the trigger still ran reclassify,
			// which the journal-count assertions below pin.
			if m := live.Metrics(); m.Evolutions == 0 {
				t.Fatalf("workload fired no auto-evolution (metrics %+v); test is vacuous", m)
			}
			if err := live.CloseWAL(); err != nil {
				t.Fatal(err)
			}

			counts := journalOpCounts(t, dir)
			if counts["autoevolve"] == 0 {
				t.Errorf("no autoevolve records journaled: %v", counts)
			}
			if counts["autoreclassify"] == 0 {
				t.Errorf("no autoreclassify records journaled: %v", counts)
			}

			// Replay reproduces the live state, decisions included.
			recovered, info, err := Recover(testConfig(), nil, dir, wal.Options{Sync: wal.SyncOff})
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.CloseWAL()
			if want := journalRecordCount(t, dir); info.Replayed != want {
				t.Errorf("replayed %d records, want %d", info.Replayed, want)
			}
			if got, want := snapshotOf(t, recovered), snapshotOf(t, live); !reflect.DeepEqual(got, want) {
				t.Errorf("recovered state diverges:\n got: %v\nwant: %v", got, want)
			}

			// A replay that skips the decision records must not re-derive
			// them: the check phase stays suppressed in replica mode, so the
			// decisions live only in the journal.
			bare := New(testConfig())
			bare.SetReplica(true)
			if _, err := wal.Replay(dir, func(p []byte) error {
				var o walOp
				if err := json.Unmarshal(p, &o); err != nil {
					return err
				}
				if o.Op == "autoevolve" || o.Op == "autoreclassify" {
					return nil
				}
				return bare.ApplyWALRecord(p)
			}); err != nil {
				t.Fatal(err)
			}
			if bm := bare.Metrics(); bm.Evolutions != 0 || bm.Reclassified != 0 {
				t.Errorf("replay re-derived decisions (evolutions %d, reclassified %d); they must come from the journal alone",
					bm.Evolutions, bm.Reclassified)
			}
		})
	}
}

// TestCheckpointWALGCErrorSurfaced checks a failed checkpoint-time WAL
// truncation is observable: the wal_gc_errors counter moves and the
// installed GC logger sees the error, while the checkpoint itself (the
// snapshot) still succeeds.
func TestCheckpointWALGCErrorSurfaced(t *testing.T) {
	fs := faultfs.New()
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 256, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testConfig())
	s.AttachWAL(w)
	var gcErrs []error
	s.SetWALGCLogger(func(err error) { gcErrs = append(gcErrs, err) })
	s.AddDTD("article", articleDTD())
	for i := 0; i < 6; i++ {
		s.Add(parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	}
	before, err := wal.ListSegments(dir)
	if err != nil || len(before) < 2 {
		t.Fatalf("want multiple segments to truncate, have %v (%v)", before, err)
	}

	// Removals fail from here on; sealing the active segment (Sync+Close)
	// still works, so the checkpoint itself lands.
	fs.FailOps()
	ckpt := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatalf("checkpoint must survive a GC failure, got %v", err)
	}
	if m := s.Metrics(); m.WALGCErrors == 0 {
		t.Error("metrics.WALGCErrors = 0 after failed truncation")
	}
	if len(gcErrs) == 0 {
		t.Error("GC logger never called")
	}

	// Healing the disk lets the next checkpoint truncate what the failed
	// pass left behind.
	fs.Heal()
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	after, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Errorf("healed checkpoint left %d segments, had %d before; covered history must go", len(after), len(before))
	}
	s.CloseWAL()
}

// TestWALRetentionFloorPinsSegments checks the replication retention hook:
// while the floor names a low segment, checkpoints keep every segment at or
// above it (GC never outruns shipping); clearing the hook lets the next
// checkpoint truncate normally.
func TestWALRetentionFloorPinsSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testConfig())
	s.AttachWAL(w)
	s.SetWALRetention(func() uint64 { return 1 })
	s.AddDTD("article", articleDTD())
	for i := 0; i < 6; i++ {
		s.Add(parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	}
	before, err := wal.ListSegments(dir)
	if err != nil || len(before) < 2 {
		t.Fatalf("want multiple segments, have %v (%v)", before, err)
	}

	ckpt := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	pinned, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned) < len(before) {
		t.Errorf("checkpoint removed pinned segments: had %v, left %v", before, pinned)
	}

	s.SetWALRetention(nil)
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	free, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(free) >= len(pinned) {
		t.Errorf("unpinned checkpoint kept %d segments, had %d; covered history must go", len(free), len(pinned))
	}
	s.CloseWAL()
}
