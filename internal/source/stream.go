// Streaming one-pass ingest (DESIGN.md §15): AddStream classifies and
// records a document in a single pass over the reader — the pull parser
// feeds one similarity evaluator per candidate DTD and the speculative
// recorder incrementally, so peak memory is bounded by the open-element
// path and the schema-sized delta tables, never by document length.
//
// Durability reuses the tree path's journal byte-for-byte: the parser's
// canonical-serialization tap spools exactly the bytes Document.String()
// would produce, so a non-degraded streamed document journals the same
// "doc" record the tree path would, and replay through either path
// converges to identical state (the streamed statistics are bit-identical
// to Record(doc), pinned by internal/stream's equivalence tests). A
// document that hit the MaxChildren budget journals as "sdoc" carrying the
// budget, and replays through the streaming path so its degraded
// statistics are reproduced exactly.
//
// When neither a WAL nor a docstore is attached, no spool is kept and the
// pass runs in truly bounded memory; the price is that a document the fold
// cannot classify has no bytes left to put in the repository
// (ErrStreamRepository), and a DTD-set change mid-stream cannot be healed
// by re-scoring the spool (ErrStreamStale) — both ask the caller to
// re-send.
package source

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"dtdevolve/internal/classify"
	"dtdevolve/internal/stream"
	"dtdevolve/internal/xmltree"
)

// ErrStreamStale reports that the DTD set changed while the document
// streamed and no spool was kept to re-score it; the caller must re-send.
var ErrStreamStale = errors.New("source: DTD set changed during streaming ingest; re-send the document")

// ErrStreamRepository reports that a streamed document classified below σ
// in bounded mode (no WAL, no store): its bytes are gone, so it cannot be
// added to the repository. Nothing was recorded; the caller may re-send it
// through the tree path.
var ErrStreamRepository = errors.New("source: streamed document is unclassified and no spool was kept for the repository; re-send via the tree path")

// streamConfig builds the consumer configuration for one child budget.
func (s *Source) streamConfig(maxChildren int) stream.Config {
	return stream.Config{
		Parse:       xmltree.Options{MaxBytes: s.cfg.MaxDocBytes},
		MaxChildren: maxChildren,
		Decay:       s.cfg.Similarity.Decay,
	}
}

// AddStream ingests one document from r through the one-pass streaming
// path: classification, recording, journaling, store append and the check
// phase, equivalent to Add(parse(r)) — same winner, same similarity bits,
// same recorded statistics, same journal bytes — without materializing the
// tree. Budgets come from the source Config: MaxDocBytes rejects oversized
// input with xmltree.SizeError, MaxChildren degrades over-wide elements
// (journaled as "sdoc" so replay reproduces the degraded statistics).
func (s *Source) AddStream(r io.Reader) (AddResult, error) {
	return s.addStream(r, s.cfg.MaxChildren, true)
}

// addStream is AddStream with an explicit child budget: WAL replay of an
// "sdoc" record re-streams under the budget that shaped it, not the
// current configuration (pooled consumers carry the configured budget and
// are bypassed in that case).
func (s *Source) addStream(r io.Reader, maxChildren int, pooled bool) (AddResult, error) {
	start := time.Now() // dtdvet:allow replaydet -- wall clock feeds phase metrics only; never journaled or replayed
	s.mu.RLock()
	gen := s.gen
	// Replay keeps a spool too: a replayed "sdoc" never re-journals, but an
	// unclassified one still needs its bytes for the repository, and a
	// fallback still needs them for the tree path.
	spoolWanted := (s.wal != nil && !s.replaying && s.walErr == nil) || s.store != nil || s.replaying
	entries := s.classifier.StreamEntries()
	thesaurus := s.cfg.Similarity.TagSimilarity != nil
	s.mu.RUnlock()

	if thesaurus {
		// The streaming evaluator scores exact tag equality only; the
		// thesaurus extension falls back to the tree path, still bounded by
		// MaxDocBytes at the parse layer.
		doc, err := xmltree.ParseWithOptions(r, xmltree.Options{MaxBytes: s.cfg.MaxDocBytes})
		if err != nil {
			s.observeStreamError(err)
			return AddResult{}, err
		}
		return s.Add(doc), nil
	}

	var ing *stream.Ingestor
	if pooled {
		if v := s.streamers.Get(); v != nil {
			ing = v.(*stream.Ingestor)
		} else {
			ing = stream.NewIngestor(s.tab, s.streamConfig(maxChildren))
		}
		defer s.streamers.Put(ing)
	} else {
		ing = stream.NewIngestor(s.tab, s.streamConfig(maxChildren))
	}

	var spool *bytes.Buffer
	var canon io.Writer
	if spoolWanted {
		spool = new(bytes.Buffer)
		canon = spool
	}
	out, err := ing.Run(r, entries, canon)
	if err != nil {
		s.observeStreamError(err)
		return AddResult{}, err
	}
	fold := s.classifier.FoldStream(out.Scores)
	s.metrics.ObserveClassifyPhase(time.Since(start)) // dtdvet:allow replaydet -- metrics only

	commit := time.Now() // dtdvet:allow replaydet -- wall clock feeds phase metrics only; never journaled or replayed
	s.mu.Lock()
	res, err := s.commitStreamLocked(ing, fold, gen, maxChildren, spool, out.Degraded)
	if err == nil {
		s.fireTriggers(&res)
	}
	s.mu.Unlock()
	if err != nil {
		return AddResult{}, err
	}
	s.metrics.ObserveStream(out.Consumed)
	s.metrics.ObserveCommitPhase(time.Since(commit)) // dtdvet:allow replaydet -- metrics only
	return res, nil
}

// observeStreamError counts a failed streaming ingest (today: the byte
// budget; other parse errors are the client's).
func (s *Source) observeStreamError(err error) {
	var se *xmltree.SizeError
	if errors.As(err, &se) {
		s.metrics.ObserveStreamRejectedOversize()
	}
}

// commitStreamLocked is the write-locked half of a streamed ingest: verify
// the scores are still current, journal the document, merge the winner's
// recorded delta and run the check phase — mirroring commitLocked +
// recordLocked with the recording already done. Callers hold the write
// lock.
// dtdvet:requires mu
func (s *Source) commitStreamLocked(ing *stream.Ingestor, fold classify.Result, gen uint64, maxChildren int, spool *bytes.Buffer, degraded bool) (AddResult, error) {
	if s.gen != gen {
		// The DTD set changed while the document streamed: the scores (and
		// the speculative deltas, keyed to the old lane set) are stale.
		// Re-score the spooled canonical bytes through the tree path — its
		// journal record is byte-identical to what we would have written.
		return s.streamFallbackLocked(spool, ErrStreamStale)
	}
	if fold.Classified && !ing.Committable(fold.DTDName) {
		// Degenerate σ ≤ 0 fold: a root-gated DTD won with similarity 0, and
		// its lane was never scored or recorded. The tree path handles it.
		return s.streamFallbackLocked(spool, ErrStreamStale)
	}
	if !fold.Classified && spool == nil {
		return AddResult{}, ErrStreamRepository
	}

	// Materialize the repository copy before journaling so the journal
	// never records a commit that then fails to apply. (The spool is the
	// canonical serialization of a document that just parsed; failure here
	// is a programming error, not an input error.)
	var repoDoc *xmltree.Document
	if !fold.Classified {
		doc, err := xmltree.ParseString(spool.String())
		if err != nil {
			return AddResult{}, fmt.Errorf("source: re-parsing stream spool: %w", err)
		}
		repoDoc = doc
	}

	op := walOp{Op: "doc"}
	if degraded {
		// A degraded document's statistics depend on the child budget;
		// replaying it through the tree path would record the full-fidelity
		// statistics and diverge. Journal the budget with it and replay
		// through the streaming path.
		op = walOp{Op: "sdoc", MaxChildren: maxChildren}
	}
	if spool != nil {
		op.Text = spool.String()
	}
	s.journalLocked(op)

	s.added++
	res := AddResult{DTDName: fold.DTDName, Similarity: fold.Similarity, Classified: fold.Classified, Candidates: fold.Candidates}
	s.metrics.ObserveDocument(fold.Classified)
	if !fold.Classified {
		res.DTDName = ""
		s.repository = append(s.repository, repoDoc)
		return res, nil
	}

	e := s.entries[fold.DTDName]
	if _, ok := ing.CommitWinner(fold.DTDName, e.rec); !ok {
		// Unreachable: Committable held under the same lock generation.
		return AddResult{}, fmt.Errorf("source: streamed winner %q lost its lane", fold.DTDName)
	}
	e.docs++
	if s.store != nil {
		_ = s.store.PutRaw(fold.DTDName, spool.Bytes())
	}
	if s.cfg.AutoEvolve && !s.replaying {
		if e.docs >= s.cfg.MinDocs && e.rec.ShouldEvolve(s.cfg.Tau) {
			s.journalLocked(walOp{Op: "autoevolve", Name: fold.DTDName})
			report, reclassified := s.evolveLocked(fold.DTDName)
			res.Evolved = true
			res.Report = &report
			res.Reclassified = reclassified
		}
	}
	return res, nil
}

// streamFallbackLocked re-parses the spooled bytes and commits through the
// tree path; without a spool it returns sentinel.
// dtdvet:requires mu
func (s *Source) streamFallbackLocked(spool *bytes.Buffer, sentinel error) (AddResult, error) {
	if spool == nil {
		return AddResult{}, sentinel
	}
	doc, err := xmltree.ParseString(spool.String())
	if err != nil {
		return AddResult{}, fmt.Errorf("source: re-parsing stream spool: %w", err)
	}
	cls := s.classifier.Classify(doc)
	return s.commitLocked(doc, cls), nil
}

// applyStreamOp replays one journaled "sdoc" record: the document is
// re-streamed under the budget that shaped it, so the degraded statistics
// land bit-identically.
// dtdvet:replayroot
func (s *Source) applyStreamOp(op walOp) error {
	if _, err := s.addStream(strings.NewReader(op.Text), op.MaxChildren, false); err != nil {
		return fmt.Errorf("source: WAL streamed document: %w", err)
	}
	return nil
}
