package source

import (
	"sync"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

// TestAddBatchMatchesSerialAdds checks that a batch ingest is equivalent to
// the same documents added one by one.
func TestAddBatchMatchesSerialAdds(t *testing.T) {
	mixed := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>t</title><author>a</author><body>b</body></article>`,
		`<invoice><total>3</total></invoice>`,
		`<article><title>u</title><body>c</body></article>`,
	}
	serial, batch := New(DefaultConfig()), New(DefaultConfig())
	serial.AddDTD("article", articleDTD())
	batch.AddDTD("article", articleDTD())

	var serialResults []AddResult
	for _, src := range mixed {
		serialResults = append(serialResults, serial.Add(parseDoc(t, src)))
	}
	batchResults := batch.AddBatch(parseDocs(t, mixed))

	if len(batchResults) != len(serialResults) {
		t.Fatalf("batch returned %d results, want %d", len(batchResults), len(serialResults))
	}
	for i := range serialResults {
		a, b := serialResults[i], batchResults[i]
		if a.Classified != b.Classified || a.DTDName != b.DTDName || a.Similarity != b.Similarity {
			t.Errorf("doc %d: serial %+v, batch %+v", i, a, b)
		}
	}
	if serial.RepositorySize() != batch.RepositorySize() {
		t.Errorf("repository: serial %d, batch %d", serial.RepositorySize(), batch.RepositorySize())
	}
	ss, bs := serial.Status(), batch.Status()
	if ss[0].Docs != bs[0].Docs || ss[0].CheckRatio != bs[0].CheckRatio {
		t.Errorf("status: serial %+v, batch %+v", ss[0], bs[0])
	}
}

// TestAddBatchRescoresAfterMidBatchEvolution drives an evolution in the
// middle of a batch commit and checks that the documents committed after it
// are re-scored against the evolved DTD set (the generation-counter path of
// the two-phase ingest).
func TestAddBatchRescoresAfterMidBatchEvolution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinDocs = 10
	s := New(cfg)
	s.AddDTD("article", articleDTD())

	drifted := `<article><title>t</title><author>a</author><body>b</body></article>`
	srcs := make([]string, 30)
	for i := range srcs {
		srcs[i] = drifted
	}
	results := s.AddBatch(parseDocs(t, srcs))
	evolvedAt := -1
	for i, res := range results {
		if !res.Classified {
			t.Fatalf("doc %d unclassified (sim %v)", i, res.Similarity)
		}
		if res.Evolved && evolvedAt < 0 {
			evolvedAt = i
		}
	}
	if evolvedAt < 0 {
		t.Fatal("no evolution inside the batch")
	}
	for i := evolvedAt + 1; i < len(results); i++ {
		if results[i].Similarity != 1 {
			t.Errorf("doc %d after mid-batch evolution: similarity %v, want 1 (stale score committed?)",
				i, results[i].Similarity)
		}
	}
}

// TestSourceConcurrentStress hammers one Source from many goroutines mixing
// Add, AddBatch, Status, DTD, AddDTD, EvolveNow, Snapshot and
// ReclassifyRepository (run with -race), then checks the ingest counters
// balance: every offered document was counted exactly once, and every
// repository document is either still unclassified or was recovered exactly
// once.
func TestSourceConcurrentStress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sigma = 0.6
	cfg.MinDocs = 15
	s := New(cfg)
	s.AddDTD("article", articleDTD())

	const (
		adders   = 4
		perAdder = 20
		batchers = 2
		batches  = 4
		perBatch = 5
	)
	shapes := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>t</title><author>a</author><body>b</body></article>`,
		`<article><title>t</title><ref/><ref/><body>b</body></article>`,
		`<article><title>t</title><ref/><ref/><ref/><ref/><ref/><ref/><body>b</body></article>`,
		`<alien><x/><y/></alien>`,
	}
	var wg sync.WaitGroup
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perAdder; i++ {
				s.Add(parseDoc(t, shapes[(g+i)%len(shapes)]))
			}
		}(g)
	}
	for g := 0; g < batchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				srcs := make([]string, perBatch)
				for i := range srcs {
					srcs[i] = shapes[(g+b+i)%len(shapes)]
				}
				s.AddBatch(parseDocs(t, srcs))
			}
		}(g)
	}
	wg.Add(1)
	go func() { // readers
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Status()
			s.Names()
			s.RepositorySize()
			s.Metrics()
			if d := s.DTD("article"); d == nil {
				t.Error("article DTD disappeared")
				return
			}
			if _, err := s.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // DTD-set churn: re-register a second DTD, force evolutions
		defer wg.Done()
		for i := 0; i < 10; i++ {
			catalog := dtd.MustParse(`
<!ELEMENT catalog (product*)>
<!ELEMENT product (name)>
<!ELEMENT name (#PCDATA)>`)
			catalog.Name = "catalog"
			s.AddDTD("catalog", catalog)
			_, _, _ = s.EvolveNow("article")
			s.ReclassifyRepository()
		}
	}()
	wg.Wait()

	const total = adders*perAdder + batchers*batches*perBatch
	m := s.Metrics()
	if m.Added != total {
		t.Errorf("metrics.Added = %d, want %d", m.Added, total)
	}
	if m.Classified+m.Repository != m.Added {
		t.Errorf("counters unbalanced: classified %d + repository %d != added %d",
			m.Classified, m.Repository, m.Added)
	}
	if got, want := int64(s.RepositorySize()), m.Repository-m.Reclassified; got != want {
		t.Errorf("repository size %d, want %d (sent %d - recovered %d): documents lost or duplicated",
			got, want, m.Repository, m.Reclassified)
	}
}

// TestReclassificationNotLostUnderConcurrentAdds checks the evolution
// phase's repository re-classification against concurrent ingest: recovered
// documents must leave the repository exactly once, and documents scored
// concurrently with the evolution must not vanish.
func TestReclassificationNotLostUnderConcurrentAdds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sigma = 0.6
	cfg.AutoEvolve = false
	s := New(cfg)
	s.AddDTD("article", articleDTD())

	// Heavily drifted documents land in the repository.
	far := `<article><title>t</title><ref/><ref/><ref/><ref/><ref/><ref/><body>b</body></article>`
	for i := 0; i < 5; i++ {
		if res := s.Add(parseDoc(t, far)); res.Classified {
			t.Fatalf("far doc classified (sim %v)", res.Similarity)
		}
	}
	// Mildly drifted documents accumulate concurrently with repeated
	// repository re-classifications.
	mild := `<article><title>t</title><ref/><ref/><body>b</body></article>`
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if res := s.Add(parseDoc(t, mild)); !res.Classified {
					t.Errorf("mild doc unclassified (sim %v)", res.Similarity)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			s.ReclassifyRepository()
		}
	}()
	wg.Wait()

	// The evolution's re-classification recovers the repository.
	if _, _, err := s.EvolveNow("article"); err != nil {
		t.Fatal(err)
	}
	if s.RepositorySize() != 0 {
		t.Errorf("repository after evolution = %d, want 0 (recovered)", s.RepositorySize())
	}
	m := s.Metrics()
	if got, want := int64(s.RepositorySize()), m.Repository-m.Reclassified; got != want {
		t.Errorf("repository size %d, want %d (sent %d - recovered %d)",
			got, want, m.Repository, m.Reclassified)
	}
}

func parseDocs(t *testing.T, srcs []string) []*xmltree.Document {
	t.Helper()
	docs := make([]*xmltree.Document, len(srcs))
	for i, src := range srcs {
		docs[i] = parseDoc(t, src)
	}
	return docs
}
