// Package source implements the paper's full lifecycle (Figure 1): a
// source of XML documents described by a set of DTDs, with
//
//   - an initialization phase (the DTD set and the similarity threshold σ);
//   - a classification phase associating each incoming document with the
//     DTD best describing its structure, or with the repository of
//     unclassified documents when no similarity reaches σ;
//   - a recording phase extracting structural information into the
//     extended DTD;
//   - a check phase triggering evolution for a DTD when the normalized
//     amount of non-valid elements exceeds the threshold τ;
//   - an evolution phase rewriting the DTD (package evolve);
//   - re-classification of the repository against the evolved DTD set.
//
// A Source is safe for concurrent use.
package source

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"dtdevolve/internal/adapt"
	"dtdevolve/internal/classify"
	"dtdevolve/internal/docstore"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/record"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/trigger"
	"dtdevolve/internal/xmltree"
)

// Config holds the source parameters.
type Config struct {
	// Sigma is the classification threshold σ: documents below it against
	// every DTD go to the repository.
	Sigma float64
	// Tau is the evolution activation threshold τ of the check phase.
	Tau float64
	// MinDocs is the minimum number of documents classified in a DTD since
	// the last evolution before the check phase may trigger; it prevents
	// evolving on a couple of outliers.
	MinDocs int
	// AutoEvolve runs the evolution phase automatically whenever the check
	// phase triggers. When false, callers poll NeedsEvolution / call
	// EvolveNow themselves.
	AutoEvolve bool
	// Similarity configures the structural similarity measure.
	Similarity similarity.Config
	// Evolve configures the evolution phase.
	Evolve evolve.Config
}

// DefaultConfig returns the thresholds used by the evaluation harness:
// σ = 0.7, τ = 0.25, at least 20 documents between evolutions.
func DefaultConfig() Config {
	return Config{
		Sigma:      0.7,
		Tau:        0.25,
		MinDocs:    20,
		AutoEvolve: true,
		Similarity: similarity.DefaultConfig(),
		Evolve:     evolve.DefaultConfig(),
	}
}

// entry is the per-DTD state: the DTD itself, its recorder (extended DTD)
// and bookkeeping.
type entry struct {
	d          *dtd.DTD
	rec        *record.Recorder
	docs       int // documents classified since last evolution
	evolutions int
}

// Source is the document source: a DTD set, the extended-DTD recorders and
// the repository of unclassified documents.
type Source struct {
	mu         sync.Mutex
	cfg        Config
	entries    map[string]*entry
	classifier *classify.Classifier
	repository []*xmltree.Document
	added      int
	triggers   []*trigger.Rule
	store      *docstore.Store
}

// New returns an empty Source.
func New(cfg Config) *Source {
	return &Source{
		cfg:        cfg,
		entries:    make(map[string]*entry),
		classifier: classify.New(cfg.Sigma, cfg.Similarity),
	}
}

// AddDTD registers a DTD under the given name (initialization phase). It
// replaces any previous DTD with that name and resets its recorder.
func (s *Source) AddDTD(name string, d *dtd.DTD) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[name] = &entry{d: d, rec: record.New(d)}
	s.classifier.Set(name, d)
}

// DTD returns the current DTD registered under name, or nil.
func (s *Source) DTD(name string) *dtd.DTD {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[name]; ok {
		return e.d
	}
	return nil
}

// Names returns the registered DTD names, sorted.
func (s *Source) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.names()
}

func (s *Source) names() []string {
	out := make([]string, 0, len(s.entries))
	for name := range s.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddResult reports what happened to one added document.
type AddResult struct {
	// DTDName is the DTD the document was classified in ("" when it went
	// to the repository).
	DTDName string
	// Similarity is the best similarity value observed.
	Similarity float64
	// Classified reports whether the similarity reached σ.
	Classified bool
	// Evolved reports whether this addition triggered an evolution.
	Evolved bool
	// Report is the evolution report when Evolved is true.
	Report *evolve.Report
	// Reclassified is the number of repository documents recovered by the
	// evolution.
	Reclassified int
	// Triggered lists the trigger rules (source text) fired by this
	// addition.
	Triggered []string
}

// Add classifies a document against the DTD set, records it (or stores it
// in the repository), and — with AutoEvolve — runs the check and evolution
// phases.
func (s *Source) Add(doc *xmltree.Document) AddResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.added++
	res := s.classifyAndRecord(doc)
	if res.Classified && s.cfg.AutoEvolve {
		e := s.entries[res.DTDName]
		if e.docs >= s.cfg.MinDocs && e.rec.ShouldEvolve(s.cfg.Tau) {
			report, reclassified := s.evolveLocked(res.DTDName)
			res.Evolved = true
			res.Report = &report
			res.Reclassified = reclassified
		}
	}
	s.fireTriggers(&res)
	return res
}

// AddTriggerRule installs one rule of the evolution trigger language, e.g.
//
//	on article when check_ratio > 0.3 and docs >= 50 do evolve, reclassify
//
// Rules are evaluated after every Add, in installation order; "on *"
// watches every DTD. Trigger rules complement (and can replace) the
// built-in AutoEvolve policy.
func (s *Source) AddTriggerRule(src string) error {
	rule, err := trigger.Parse(src)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.triggers = append(s.triggers, rule)
	return nil
}

// SetTriggerRules replaces the installed rules with a newline-separated
// rule list ('#' comments allowed).
func (s *Source) SetTriggerRules(src string) error {
	rules, err := trigger.ParseAll(src)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.triggers = rules
	return nil
}

// TriggerRules returns the source text of the installed rules.
func (s *Source) TriggerRules() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.triggers))
	for i, r := range s.triggers {
		out[i] = r.String()
	}
	return out
}

// lockedState adapts the source to the trigger.State interface; it must
// only be used while holding s.mu.
type lockedState struct{ s *Source }

func (l lockedState) CheckRatio(name string) float64 {
	if e, ok := l.s.entries[name]; ok {
		return e.rec.CheckRatio()
	}
	return 0
}

func (l lockedState) Docs(name string) int {
	if e, ok := l.s.entries[name]; ok {
		return e.docs
	}
	return 0
}

func (l lockedState) Repository() int { return len(l.s.repository) }

func (l lockedState) Invalidity(name, element string) float64 {
	if e, ok := l.s.entries[name]; ok {
		if st := e.rec.Stats(element); st != nil {
			return st.InvalidityRatio()
		}
	}
	return 0
}

// fireTriggers evaluates every installed rule against every DTD and runs
// the actions of those that hold. Callers hold s.mu.
func (s *Source) fireTriggers(res *AddResult) {
	if len(s.triggers) == 0 {
		return
	}
	state := lockedState{s: s}
	for _, rule := range s.triggers {
		for _, name := range s.names() {
			if !rule.Eval(name, state) {
				continue
			}
			res.Triggered = append(res.Triggered, rule.String())
			for _, action := range rule.Actions {
				switch action {
				case trigger.Evolve:
					report, reclassified := s.evolveLocked(name)
					res.Evolved = true
					res.Report = &report
					res.Reclassified += reclassified
				case trigger.Reclassify:
					res.Reclassified += s.reclassifyLocked()
				}
			}
			break // one firing per rule per Add
		}
	}
}

func (s *Source) classifyAndRecord(doc *xmltree.Document) AddResult {
	cls := s.classifier.Classify(doc)
	res := AddResult{DTDName: cls.DTDName, Similarity: cls.Similarity, Classified: cls.Classified}
	if !cls.Classified {
		res.DTDName = ""
		s.repository = append(s.repository, doc)
		return res
	}
	e := s.entries[cls.DTDName]
	e.rec.Record(doc)
	e.docs++
	if s.store != nil {
		// Persist the classified document so it can be re-validated or
		// adapted after an evolution (AdaptStored). Store failures must
		// not lose the classification; surface them via the status.
		_ = s.store.Put(cls.DTDName, doc)
	}
	return res
}

// EnableStore attaches a document store: every subsequently classified
// document is kept in the store under its DTD's name (durably when dir is
// non-empty, in memory otherwise), so that AdaptStored can rewrite the
// stored population after an evolution — the paper's §6 open problem.
func (s *Source) EnableStore(dir string) error {
	store, err := docstore.Open(dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = store
	return nil
}

// CloseStore releases the attached store's files.
func (s *Source) CloseStore() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	err := s.store.Close()
	s.store = nil
	return err
}

// StoredDocs returns the stored documents classified in the named DTD.
func (s *Source) StoredDocs(name string) []*xmltree.Document {
	s.mu.Lock()
	store := s.store
	s.mu.Unlock()
	if store == nil {
		return nil
	}
	return store.Docs(name)
}

// AdaptStored rewrites the documents stored for the named DTD so they
// conform to its current (typically just-evolved) declaration, replacing
// the stored collection. It returns how many documents needed changes.
func (s *Source) AdaptStored(name string, opts adapt.Options) (int, error) {
	s.mu.Lock()
	e, ok := s.entries[name]
	store := s.store
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("source: no DTD named %q", name)
	}
	if store == nil {
		return 0, fmt.Errorf("source: no document store attached (EnableStore)")
	}
	adapter := adapt.New(e.d, opts)
	docs := store.Docs(name)
	changed := 0
	out := make([]*xmltree.Document, len(docs))
	for i, doc := range docs {
		adapted, report := adapter.Adapt(doc)
		out[i] = adapted
		if len(report.Changes) > 0 {
			changed++
		}
	}
	if err := store.Replace(name, out); err != nil {
		return changed, err
	}
	return changed, nil
}

// NeedsEvolution returns the names of DTDs whose check-phase condition
// currently exceeds τ (with at least MinDocs documents recorded).
func (s *Source) NeedsEvolution() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, name := range s.names() {
		e := s.entries[name]
		if e.docs >= s.cfg.MinDocs && e.rec.ShouldEvolve(s.cfg.Tau) {
			out = append(out, name)
		}
	}
	return out
}

// EvolveNow forces the evolution phase for the named DTD, returning the
// report and the number of repository documents recovered.
func (s *Source) EvolveNow(name string) (evolve.Report, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[name]; !ok {
		return evolve.Report{}, 0, fmt.Errorf("source: no DTD named %q", name)
	}
	report, reclassified := s.evolveLocked(name)
	return report, reclassified, nil
}

// evolveLocked runs the evolution phase for one DTD and re-classifies the
// repository against the updated DTD set. Callers hold s.mu.
func (s *Source) evolveLocked(name string) (evolve.Report, int) {
	e := s.entries[name]
	evolved, report := evolve.Evolve(e.rec, s.cfg.Evolve)
	e.d = evolved
	e.rec.SetDTD(evolved)
	e.docs = 0
	e.evolutions++
	s.classifier.Set(name, evolved)
	return report, s.reclassifyLocked()
}

// ReclassifyRepository re-classifies every repository document against the
// current DTD set, recording those that now reach σ. It returns how many
// documents were recovered.
func (s *Source) ReclassifyRepository() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reclassifyLocked()
}

func (s *Source) reclassifyLocked() int {
	var remaining []*xmltree.Document
	recovered := 0
	for _, doc := range s.repository {
		cls := s.classifier.Classify(doc)
		if cls.Classified {
			e := s.entries[cls.DTDName]
			e.rec.Record(doc)
			e.docs++
			recovered++
			continue
		}
		remaining = append(remaining, doc)
	}
	s.repository = remaining
	return recovered
}

// RepositorySize returns the number of unclassified documents currently
// held in the repository.
func (s *Source) RepositorySize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.repository)
}

// Repository returns a copy of the repository's documents.
func (s *Source) Repository() []*xmltree.Document {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*xmltree.Document(nil), s.repository...)
}

// DTDStatus summarizes the state of one DTD in the source.
type DTDStatus struct {
	Name       string
	Docs       int     // documents classified since the last evolution
	CheckRatio float64 // the check-phase quantity against τ
	Evolutions int     // how many evolutions have run
	Model      string  // serialized DTD
}

// Status returns a summary of every DTD in the source.
func (s *Source) Status() []DTDStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []DTDStatus
	for _, name := range s.names() {
		e := s.entries[name]
		out = append(out, DTDStatus{
			Name:       name,
			Docs:       e.docs,
			CheckRatio: e.rec.CheckRatio(),
			Evolutions: e.evolutions,
			Model:      e.d.String(),
		})
	}
	return out
}

// snapshot is the JSON checkpoint format.
type snapshot struct {
	DTDs       map[string]string           `json:"dtds"`
	Roots      map[string]string           `json:"roots"`
	Docs       map[string]int              `json:"docs"`
	Evolutions map[string]int              `json:"evolutions"`
	Recorders  map[string]*record.Snapshot `json:"recorders"`
	Repository []string                    `json:"repository"`
	Added      int                         `json:"added"`
}

// Snapshot serializes the source state (DTD set, extended-DTD statistics,
// repository) to JSON, so a long-lived service can checkpoint and resume.
func (s *Source) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshot{
		DTDs:       make(map[string]string),
		Roots:      make(map[string]string),
		Docs:       make(map[string]int),
		Evolutions: make(map[string]int),
		Recorders:  make(map[string]*record.Snapshot),
		Added:      s.added,
	}
	for name, e := range s.entries {
		snap.DTDs[name] = e.d.String()
		snap.Roots[name] = e.d.Name
		snap.Docs[name] = e.docs
		snap.Evolutions[name] = e.evolutions
		snap.Recorders[name] = e.rec.Snapshot()
	}
	for _, doc := range s.repository {
		snap.Repository = append(snap.Repository, doc.String())
	}
	return json.Marshal(snap)
}

// Restore rebuilds a Source from a Snapshot produced with the same Config.
func Restore(cfg Config, data []byte) (*Source, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("source: decoding snapshot: %w", err)
	}
	s := New(cfg)
	for name, src := range snap.DTDs {
		d, err := dtd.ParseString(src)
		if err != nil {
			return nil, fmt.Errorf("source: snapshot DTD %q: %w", name, err)
		}
		d.Name = snap.Roots[name]
		e := &entry{d: d, rec: record.New(d), docs: snap.Docs[name], evolutions: snap.Evolutions[name]}
		if rs := snap.Recorders[name]; rs != nil {
			e.rec.Restore(rs)
		}
		s.entries[name] = e
		s.classifier.Set(name, d)
	}
	for _, src := range snap.Repository {
		doc, err := xmltree.ParseString(src)
		if err != nil {
			return nil, fmt.Errorf("source: snapshot repository document: %w", err)
		}
		s.repository = append(s.repository, doc)
	}
	s.added = snap.Added
	return s, nil
}
