// Package source implements the paper's full lifecycle (Figure 1): a
// source of XML documents described by a set of DTDs, with
//
//   - an initialization phase (the DTD set and the similarity threshold σ);
//   - a classification phase associating each incoming document with the
//     DTD best describing its structure, or with the repository of
//     unclassified documents when no similarity reaches σ;
//   - a recording phase extracting structural information into the
//     extended DTD;
//   - a check phase triggering evolution for a DTD when the normalized
//     amount of non-valid elements exceeds the threshold τ;
//   - an evolution phase rewriting the DTD (package evolve);
//   - re-classification of the repository against the evolved DTD set.
//
// A Source is safe for concurrent use. Ingest is two-phase: classification
// (the expensive per-DTD alignment, parallelized across DTDs by package
// classify) runs under a read lock, so many documents score concurrently;
// only the commit — record, check, evolve, re-classify — takes the write
// lock. A generation counter detects DTD-set changes between the two
// phases, in which case the document is re-scored under the write lock, so
// a stale similarity is never recorded. See DESIGN.md §8 for the full
// concurrency model.
package source

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dtdevolve/internal/adapt"
	"dtdevolve/internal/classify"
	"dtdevolve/internal/docstore"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/metrics"
	"dtdevolve/internal/record"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/trigger"
	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

// The durability layer must never drop a Sync/Close/Write error.
// dtdvet:strict errsync
//
// Every goroutine this package starts (checkpointers, scoring workers)
// must be tied to a stop signal or a WaitGroup.
// dtdvet:strict golife

// Config holds the source parameters.
type Config struct {
	// Sigma is the classification threshold σ: documents below it against
	// every DTD go to the repository.
	Sigma float64
	// Tau is the evolution activation threshold τ of the check phase.
	Tau float64
	// MinDocs is the minimum number of documents classified in a DTD since
	// the last evolution before the check phase may trigger; it prevents
	// evolving on a couple of outliers.
	MinDocs int
	// AutoEvolve runs the evolution phase automatically whenever the check
	// phase triggers. When false, callers poll NeedsEvolution / call
	// EvolveNow themselves.
	AutoEvolve bool
	// Similarity configures the structural similarity measure.
	Similarity similarity.Config
	// Evolve configures the evolution phase.
	Evolve evolve.Config
	// ClassifyApprox switches classification to the approximate candidate
	// mode: only the ClassifyTopK candidates with the best similarity upper
	// bounds are scored. The default (false) is the exact mode, whose
	// pruned results are provably identical to exhaustive scoring.
	ClassifyApprox bool
	// ClassifyTopK is the approximate-mode candidate budget; 0 means
	// classify.DefaultTopK. Ignored in exact mode.
	ClassifyTopK int
	// MaxDocBytes bounds the size of one document on the streaming ingest
	// path (and, at the serving layer, the tree path); 0 means unlimited.
	// Oversized documents are rejected with xmltree.SizeError.
	MaxDocBytes int64
	// MaxChildren bounds the kept children of one element on the streaming
	// path; an element over the budget degrades (its sequence escalates to
	// a set summary) instead of growing per-element state without bound.
	// 0 means unlimited. The budget in force is journaled with each
	// degraded document, so replay reproduces identical statistics.
	MaxChildren int
}

// DefaultConfig returns the thresholds used by the evaluation harness:
// σ = 0.7, τ = 0.25, at least 20 documents between evolutions.
func DefaultConfig() Config {
	return Config{
		Sigma:      0.7,
		Tau:        0.25,
		MinDocs:    20,
		AutoEvolve: true,
		Similarity: similarity.DefaultConfig(),
		Evolve:     evolve.DefaultConfig(),
	}
}

// entry is the per-DTD state: the DTD itself, its recorder (extended DTD)
// and bookkeeping.
type entry struct {
	d          *dtd.DTD
	rec        *record.Recorder
	docs       int // documents classified since last evolution
	evolutions int
}

// Source is the document source: a DTD set, the extended-DTD recorders and
// the repository of unclassified documents.
//
// Lock discipline: mu is held for reading during classification (the DTD
// set and σ are read-mostly) and for writing during every state mutation
// (record, check, evolve, re-classify, trigger actions). gen increments on
// every DTD-set change — AddDTD and each evolution — and lets the
// two-phase Add/AddBatch detect that a similarity computed under the read
// lock is stale.
//
// The discipline below is machine-checked by dtdvet (DESIGN.md §11): the
// guarded_by fields may only be touched with mu held, and every exported
// mutator must journal before its first write (the journaled directive).
// cfg, classifier, tab and metrics are deliberately unguarded: cfg is
// immutable after New, and the other three synchronize internally
// (classifier snapshots its pool, tab and metrics are atomics).
//
// dtdvet:journaled
type Source struct {
	mu         sync.RWMutex
	cfg        Config
	entries    map[string]*entry // dtdvet:guarded_by mu
	classifier *classify.Classifier
	// tab is the per-source symbol table: every classifier pool and every
	// recorder keys its label work by the same dense IDs, and recordLocked
	// stamps classified documents with them (intern.InternDocument).
	tab        *intern.Table
	repository []*xmltree.Document // dtdvet:guarded_by mu
	added      int                 // dtdvet:guarded_by mu
	gen        uint64              // dtdvet:guarded_by mu
	triggers   []*trigger.Rule     // dtdvet:guarded_by mu
	store      *docstore.Store     // dtdvet:guarded_by mu
	metrics    *metrics.Ingest
	// wal, when attached, journals every state-changing operation before
	// (in commit order with) its in-memory effect; replaying marks WAL
	// recovery, during which ops re-applied from the log must not be
	// re-journaled. walErr is the sticky durability failure (degraded
	// mode). See durability.go and DESIGN.md §10.
	wal       *wal.Log // dtdvet:guarded_by mu
	walErr    error    // dtdvet:guarded_by mu
	replaying bool     // dtdvet:guarded_by mu
	// journalSink, when set, diverts journalLocked's encoded records into
	// the pointed-at slice instead of appending them to the WAL. The
	// group-commit leader uses it to collect a whole group's records — docs
	// interleaved with the auto-evolutions their applies journal — into one
	// batched append (groupcommit.go).
	journalSink *[][]byte // dtdvet:guarded_by mu
	// retain, when set, floors checkpoint-time WAL truncation: segments at
	// or above retain() survive even when the snapshot covers them. The
	// replication primary pins history its followers have not acknowledged.
	// gcLogf, when set, receives the first segment-removal error of each
	// checkpoint.
	retain func() uint64 // dtdvet:guarded_by mu
	gcLogf func(error)   // dtdvet:guarded_by mu
	// committer, when set, routes commits through the group-commit
	// coordinator (groupcommit.go). Unguarded: an atomic pointer, like
	// metrics, set once by EnableGroupCommit before traffic.
	committer atomic.Pointer[groupCommitter]
	// streamers pools the one-pass ingest consumers (stream.go). Unguarded:
	// sync.Pool synchronizes internally.
	streamers sync.Pool
}

// New returns an empty Source.
func New(cfg Config) *Source {
	tab := intern.NewTable()
	classifier := classify.NewWithTable(cfg.Sigma, cfg.Similarity, tab)
	classifier.Configure(classify.Options{Approx: cfg.ClassifyApprox, TopK: cfg.ClassifyTopK})
	return &Source{
		cfg:        cfg,
		entries:    make(map[string]*entry),
		classifier: classifier,
		tab:        tab,
		metrics:    new(metrics.Ingest),
	}
}

// AddDTD registers a DTD under the given name (initialization phase). It
// replaces any previous DTD with that name and resets its recorder.
func (s *Source) AddDTD(name string, d *dtd.DTD) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journalLocked(walOp{Op: "dtd", Name: name, Root: d.Name, Text: d.String()})
	s.entries[name] = &entry{d: d, rec: record.NewWithTable(d, s.tab)}
	s.classifier.Set(name, d)
	s.gen++
}

// DTD returns a deep copy of the DTD currently registered under name, or
// nil. The copy is stable: later evolutions replace the live declaration,
// and callers must not observe (or cause) mutations of engine state.
func (s *Source) DTD(name string) *dtd.DTD {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.entries[name]; ok {
		return e.d.Clone()
	}
	return nil
}

// Names returns the registered DTD names, sorted.
func (s *Source) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.names()
}

// dtdvet:requires mu:r
func (s *Source) names() []string {
	out := make([]string, 0, len(s.entries))
	for name := range s.entries { // dtdvet:allow replaydet -- keys sorted below before returning
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddResult reports what happened to one added document.
type AddResult struct {
	// DTDName is the DTD the document was classified in ("" when it went
	// to the repository).
	DTDName string
	// Similarity is the best similarity value observed.
	Similarity float64
	// Classified reports whether the similarity reached σ.
	Classified bool
	// Evolved reports whether this addition triggered an evolution.
	Evolved bool
	// Report is the evolution report when Evolved is true.
	Report *evolve.Report
	// Reclassified is the number of repository documents recovered by the
	// evolution.
	Reclassified int
	// Triggered lists the trigger rules (source text) fired by this
	// addition.
	Triggered []string
	// Candidates are the DTDs the classifier actually scored for this
	// document, best first — a handful under the candidate index, never
	// one per registered DTD.
	Candidates []classify.Candidate
}

// Add classifies a document against the DTD set, records it (or stores it
// in the repository), and — with AutoEvolve — runs the check and evolution
// phases.
//
// Add is two-phase: the similarity scoring runs under the read lock (so
// concurrent Adds classify in parallel, and each classification fans out
// across DTDs), then the commit re-acquires the write lock. If the DTD set
// changed in between (another Add evolved a DTD, or AddDTD ran), the
// document is re-scored under the write lock before being recorded.
func (s *Source) Add(doc *xmltree.Document) AddResult {
	start := time.Now() // dtdvet:allow replaydet -- wall clock feeds phase metrics only; never journaled or replayed
	s.mu.RLock()
	gen := s.gen
	hasWAL := s.wal != nil && !s.replaying && s.walErr == nil
	cls := s.classifier.Classify(doc)
	s.mu.RUnlock()
	s.metrics.ObserveClassifyPhase(time.Since(start)) // dtdvet:allow replaydet -- metrics only

	if gc := s.committer.Load(); gc != nil {
		req := newCommitReq(doc, cls, gen, hasWAL)
		gc.submit([]*commitReq{req})
		gc.wait(req)
		return req.res
	}

	commit := time.Now() // dtdvet:allow replaydet -- wall clock feeds phase metrics only; never journaled or replayed
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != gen {
		cls = s.classifier.Classify(doc)
	}
	res := s.commitLocked(doc, cls)
	s.fireTriggers(&res)
	s.metrics.ObserveCommitPhase(time.Since(commit)) // dtdvet:allow replaydet -- metrics only
	return res
}

// AddBatch ingests many documents at once: every document is scored
// concurrently under one read-lock section, then all results are committed
// (record/check/evolve/triggers, exactly as repeated Adds would) in a
// single write-lock section. The returned slice has one AddResult per
// document, in input order.
//
// If a document's classification triggers an evolution mid-batch, later
// documents of the batch are re-scored against the updated DTD set before
// being committed, so the batch is equivalent to a serial Add sequence.
func (s *Source) AddBatch(docs []*xmltree.Document) []AddResult {
	results, _ := s.AddBatchContext(context.Background(), docs)
	return results
}

// AddBatchContext is AddBatch under a context: when ctx is cancelled — a
// disconnected client, a server shutdown — the per-document scoring fan-out
// stops launching new documents, in-flight scorings drain, and the batch
// returns ctx's error with nothing committed. Cancellation is checked
// between documents; a single document's per-DTD alignment always runs to
// completion. Once the commit phase has begun the batch is applied in full
// (the commit is cheap and must stay equivalent to a serial Add sequence).
func (s *Source) AddBatchContext(ctx context.Context, docs []*xmltree.Document) ([]AddResult, error) {
	results := make([]AddResult, len(docs))
	if len(docs) == 0 {
		return results, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.metrics.ObserveBatch()

	start := time.Now()
	s.mu.RLock()
	gen := s.gen
	hasWAL := s.wal != nil && !s.replaying && s.walErr == nil
	cls := make([]classify.Result, len(docs))
	// A worker pool sized to the core count, not one goroutine per
	// document: a large batch must not spawn thousands of goroutines that
	// all contend for the same cores (each classification already fans out
	// per DTD underneath).
	workers := runtime.GOMAXPROCS(0)
	if workers > len(docs) {
		workers = len(docs)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(docs) || ctx.Err() != nil {
					return
				}
				cls[i] = s.classifier.Classify(docs[i])
			}
		}()
	}
	wg.Wait()
	s.mu.RUnlock()
	s.metrics.ObserveClassifyPhase(time.Since(start))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if gc := s.committer.Load(); gc != nil {
		// The batch rides the same commit queue as single Adds: its
		// requests enqueue in input order (so the batch stays equivalent to
		// a serial Add sequence) and interleave with concurrent writers at
		// group granularity.
		reqs := make([]*commitReq, len(docs))
		for i, doc := range docs {
			reqs[i] = newCommitReq(doc, cls[i], gen, hasWAL)
		}
		gc.submit(reqs)
		for i, req := range reqs {
			gc.wait(req)
			results[i] = req.res
		}
		return results, nil
	}

	commit := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, doc := range docs {
		if s.gen != gen {
			// The set changed after the batch was scored (an evolution
			// earlier in this loop, or a concurrent AddDTD): re-score
			// against the current set. gen stays at its snapshot value, so
			// every later document re-scores too.
			cls[i] = s.classifier.Classify(doc)
		}
		results[i] = s.commitLocked(doc, cls[i])
		s.fireTriggers(&results[i])
	}
	s.metrics.ObserveCommitPhase(time.Since(commit))
	return results, nil
}

// commitLocked records one scored document and runs the check phase.
// Callers hold the write lock.
// dtdvet:requires mu
func (s *Source) commitLocked(doc *xmltree.Document, cls classify.Result) AddResult {
	// Write-ahead: the document is journaled before its effects. The check
	// phase's own decisions (auto-evolutions, trigger firings) are journaled
	// as logical commands of their own the moment they fire, so replay — and
	// a follower replica tailing the log — applies the recorded decision
	// instead of re-deriving it and can never diverge from the primary.
	s.journalLocked(walOp{Op: "doc", Text: doc.String()})
	return s.applyCommitLocked(doc, cls)
}

// applyCommitLocked is the in-memory half of a commit: record the document
// and run the check phase. Callers hold the write lock and must already
// have journaled the document (commitLocked, or the group committer's
// journal sink).
// dtdvet:requires mu
func (s *Source) applyCommitLocked(doc *xmltree.Document, cls classify.Result) AddResult {
	s.added++
	res := s.recordLocked(doc, cls)
	// During replay the check phase is suppressed entirely: every evolution
	// that fired live follows in the log as its own "autoevolve" record, and
	// re-deriving it here would double-apply it.
	if res.Classified && s.cfg.AutoEvolve && !s.replaying {
		e := s.entries[res.DTDName]
		if e.docs >= s.cfg.MinDocs && e.rec.ShouldEvolve(s.cfg.Tau) {
			s.journalLocked(walOp{Op: "autoevolve", Name: res.DTDName})
			report, reclassified := s.evolveLocked(res.DTDName)
			res.Evolved = true
			res.Report = &report
			res.Reclassified = reclassified
		}
	}
	return res
}

// Metrics returns a snapshot of the ingest counters (documents classified
// or sent to the repository, evolutions, per-phase latencies), folding in
// the attached WAL's durability counters, the classifier's candidate-index
// counters and the symbol-table size.
func (s *Source) Metrics() metrics.IngestSnapshot {
	snap := s.metrics.Snapshot()
	cs := s.classifier.Stats()
	snap.ClassifyPossible = cs.Possible
	snap.ClassifyCandidates = cs.Candidates
	snap.ClassifyScored = cs.Scored
	snap.ClassifyPruned = cs.Pruned
	snap.ClassifyPruneRatio = cs.PruneRatio()
	snap.InternedSymbols = int64(s.tab.Len())
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	if w != nil {
		st := w.Stats()
		snap.WALAppends = st.Appends
		snap.WALBytes = st.Bytes
		snap.WALSyncs = st.Syncs
		snap.WALRotations = st.Rotations
		if snap.Added > 0 {
			// The amortized durability cost: well below 1 when group commit
			// folds concurrent writers into shared fsyncs.
			snap.FsyncsPerDoc = float64(st.Syncs) / float64(snap.Added)
		}
	}
	return snap
}

// AddTriggerRule installs one rule of the evolution trigger language, e.g.
//
//	on article when check_ratio > 0.3 and docs >= 50 do evolve, reclassify
//
// Rules are evaluated after every Add, in installation order; "on *"
// watches every DTD. Trigger rules complement (and can replace) the
// built-in AutoEvolve policy.
func (s *Source) AddTriggerRule(src string) error {
	rule, err := trigger.Parse(src)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journalLocked(walOp{Op: "trigger", Text: src})
	s.triggers = append(s.triggers, rule)
	return nil
}

// SetTriggerRules replaces the installed rules with a newline-separated
// rule list ('#' comments allowed).
func (s *Source) SetTriggerRules(src string) error {
	rules, err := trigger.ParseAll(src)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journalLocked(walOp{Op: "triggers", Text: src})
	s.triggers = rules
	return nil
}

// TriggerRules returns the source text of the installed rules.
func (s *Source) TriggerRules() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.triggers))
	for i, r := range s.triggers {
		out[i] = r.String()
	}
	return out
}

// lockedState adapts the source to the trigger.State interface; it must
// only be used while holding s.mu.
type lockedState struct{ s *Source }

// dtdvet:requires Source.mu:r
func (l lockedState) CheckRatio(name string) float64 {
	if e, ok := l.s.entries[name]; ok {
		return e.rec.CheckRatio()
	}
	return 0
}

// dtdvet:requires Source.mu:r
func (l lockedState) Docs(name string) int {
	if e, ok := l.s.entries[name]; ok {
		return e.docs
	}
	return 0
}

// dtdvet:requires Source.mu:r
func (l lockedState) Repository() int { return len(l.s.repository) }

// dtdvet:requires Source.mu:r
func (l lockedState) Invalidity(name, element string) float64 {
	if e, ok := l.s.entries[name]; ok {
		return e.rec.InvalidityRatio(element)
	}
	return 0
}

// fireTriggers evaluates every installed rule against every DTD and runs
// the actions of those that hold. Callers hold s.mu (write side: trigger
// actions evolve and re-classify).
// dtdvet:requires mu
func (s *Source) fireTriggers(res *AddResult) {
	// Suppressed during replay: every firing that happened live was
	// journaled as its own record ("autoevolve"/"autoreclassify") and is
	// re-applied from the log, not re-derived.
	if len(s.triggers) == 0 || s.replaying {
		return
	}
	state := lockedState{s: s}
	for _, rule := range s.triggers {
		for _, name := range s.names() {
			if !rule.Eval(name, state) {
				continue
			}
			res.Triggered = append(res.Triggered, rule.String())
			for _, action := range rule.Actions {
				switch action {
				case trigger.Evolve:
					s.journalLocked(walOp{Op: "autoevolve", Name: name})
					report, reclassified := s.evolveLocked(name)
					res.Evolved = true
					res.Report = &report
					res.Reclassified += reclassified
				case trigger.Reclassify:
					s.journalLocked(walOp{Op: "autoreclassify"})
					res.Reclassified += s.reclassifyLocked()
				}
			}
			break // one firing per rule per Add
		}
	}
}

// recordLocked runs the recording phase for one scored document: the
// extended-DTD statistics for a classified document, the repository
// otherwise. Callers hold the write lock.
// dtdvet:requires mu
func (s *Source) recordLocked(doc *xmltree.Document, cls classify.Result) AddResult {
	res := AddResult{DTDName: cls.DTDName, Similarity: cls.Similarity, Classified: cls.Classified, Candidates: cls.Candidates}
	s.metrics.ObserveDocument(cls.Classified)
	if !cls.Classified {
		res.DTDName = ""
		s.repository = append(s.repository, doc)
		return res
	}
	e := s.entries[cls.DTDName]
	// Stamp the document's label IDs before recording. Safe here: the write
	// lock makes this the tree's only writer, and the recorder (same table)
	// then resolves every tag by a verified cached ID instead of a map
	// lookup. Node IDs are atomics, so a concurrent classification of the
	// same tree (e.g. a caller reusing a document) stays race-free.
	intern.InternDocument(s.tab, doc.Root)
	e.rec.Record(doc)
	e.docs++
	if s.store != nil {
		// Persist the classified document so it can be re-validated or
		// adapted after an evolution (AdaptStored). Store failures must
		// not lose the classification; surface them via the status.
		_ = s.store.Put(cls.DTDName, doc)
	}
	return res
}

// EnableStore attaches a document store: every subsequently classified
// document is kept in the store under its DTD's name (durably when dir is
// non-empty, in memory otherwise), so that AdaptStored can rewrite the
// stored population after an evolution — the paper's §6 open problem.
// dtdvet:nojournal -- attaching a store changes no replayable state
func (s *Source) EnableStore(dir string, opts ...docstore.Option) error {
	store, err := docstore.Open(dir, opts...)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = store
	return nil
}

// CloseStore releases the attached store's files.
// dtdvet:nojournal -- detaching a store changes no replayable state
func (s *Source) CloseStore() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	err := s.store.Close()
	s.store = nil
	return err
}

// StoredDocs returns the stored documents classified in the named DTD.
func (s *Source) StoredDocs(name string) []*xmltree.Document {
	s.mu.RLock()
	store := s.store
	s.mu.RUnlock()
	if store == nil {
		return nil
	}
	return store.Docs(name)
}

// AdaptStored rewrites the documents stored for the named DTD so they
// conform to its current (typically just-evolved) declaration, replacing
// the stored collection. It returns how many documents needed changes.
func (s *Source) AdaptStored(name string, opts adapt.Options) (int, error) {
	s.mu.RLock()
	var d *dtd.DTD
	if e, ok := s.entries[name]; ok {
		// Clone so the adapter never reads a declaration that a concurrent
		// evolution is replacing.
		d = e.d.Clone()
	}
	store := s.store
	s.mu.RUnlock()
	if d == nil {
		return 0, fmt.Errorf("source: no DTD named %q", name)
	}
	if store == nil {
		return 0, fmt.Errorf("source: no document store attached (EnableStore)")
	}
	adapter := adapt.New(d, opts)
	docs := store.Docs(name)
	changed := 0
	out := make([]*xmltree.Document, len(docs))
	for i, doc := range docs {
		adapted, report := adapter.Adapt(doc)
		out[i] = adapted
		if len(report.Changes) > 0 {
			changed++
		}
	}
	if err := store.Replace(name, out); err != nil {
		return changed, err
	}
	return changed, nil
}

// NeedsEvolution returns the names of DTDs whose check-phase condition
// currently exceeds τ (with at least MinDocs documents recorded).
func (s *Source) NeedsEvolution() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for _, name := range s.names() {
		e := s.entries[name]
		if e.docs >= s.cfg.MinDocs && e.rec.ShouldEvolve(s.cfg.Tau) {
			out = append(out, name)
		}
	}
	return out
}

// EvolveNow forces the evolution phase for the named DTD, returning the
// report and the number of repository documents recovered.
func (s *Source) EvolveNow(name string) (evolve.Report, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[name]; !ok {
		return evolve.Report{}, 0, fmt.Errorf("source: no DTD named %q", name)
	}
	s.journalLocked(walOp{Op: "evolve", Name: name})
	report, reclassified := s.evolveLocked(name)
	return report, reclassified, nil
}

// evolveLocked runs the evolution phase for one DTD and re-classifies the
// repository against the updated DTD set. Callers hold s.mu.
// dtdvet:requires mu
func (s *Source) evolveLocked(name string) (evolve.Report, int) {
	e := s.entries[name]
	evolved, report := evolve.Evolve(e.rec, s.cfg.Evolve)
	e.d = evolved
	e.rec.SetDTD(evolved)
	e.docs = 0
	e.evolutions++
	s.classifier.Set(name, evolved)
	s.gen++
	s.metrics.ObserveEvolution()
	return report, s.reclassifyLocked()
}

// ReclassifyRepository re-classifies every repository document against the
// current DTD set, recording those that now reach σ. It returns how many
// documents were recovered.
func (s *Source) ReclassifyRepository() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journalLocked(walOp{Op: "reclassify"})
	return s.reclassifyLocked()
}

// dtdvet:requires mu
func (s *Source) reclassifyLocked() int {
	var remaining []*xmltree.Document
	recovered := 0
	for _, doc := range s.repository {
		cls := s.classifier.Classify(doc)
		if cls.Classified {
			e := s.entries[cls.DTDName]
			intern.InternDocument(s.tab, doc.Root)
			e.rec.Record(doc)
			e.docs++
			recovered++
			continue
		}
		remaining = append(remaining, doc)
	}
	s.repository = remaining
	s.metrics.ObserveReclassified(recovered)
	return recovered
}

// RepositorySize returns the number of unclassified documents currently
// held in the repository.
func (s *Source) RepositorySize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.repository)
}

// Repository returns a copy of the repository's documents.
func (s *Source) Repository() []*xmltree.Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*xmltree.Document(nil), s.repository...)
}

// DTDStatus summarizes the state of one DTD in the source.
type DTDStatus struct {
	Name       string
	Docs       int     // documents classified since the last evolution
	CheckRatio float64 // the check-phase quantity against τ
	Evolutions int     // how many evolutions have run
	Model      string  // serialized DTD
}

// Status returns a summary of every DTD in the source.
func (s *Source) Status() []DTDStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []DTDStatus
	for _, name := range s.names() {
		e := s.entries[name]
		out = append(out, DTDStatus{
			Name:       name,
			Docs:       e.docs,
			CheckRatio: e.rec.CheckRatio(),
			Evolutions: e.evolutions,
			Model:      e.d.String(),
		})
	}
	return out
}

// snapshotVersion is the current checkpoint codec version. Version 2 added
// the interned symbol list and the per-DTD classification signatures;
// Restore falls back to a full signature rebuild for older snapshots (or
// any snapshot whose signatures fail validation), so old checkpoints keep
// restoring.
const snapshotVersion = 2

// snapshot is the JSON checkpoint format.
type snapshot struct {
	Version    int                         `json:"version,omitempty"`
	DTDs       map[string]string           `json:"dtds"`
	Roots      map[string]string           `json:"roots"`
	Docs       map[string]int              `json:"docs"`
	Evolutions map[string]int              `json:"evolutions"`
	Recorders  map[string]*record.Snapshot `json:"recorders"`
	Repository []string                    `json:"repository"`
	Added      int                         `json:"added"`
	// Triggers is the source text of the installed trigger rules, so a
	// restored service keeps firing them.
	Triggers []string `json:"triggers,omitempty"`
	// Symbols is the interned label table in ID order (ID 1 first): Restore
	// re-interns it before anything else, so every interned ID in the
	// snapshot — in particular the signature label sets — stays valid.
	Symbols []string `json:"symbols,omitempty"`
	// Signatures carries each DTD's classification signature, sparing
	// recovery the per-DTD signature rebuild (DESIGN.md §12).
	Signatures map[string]*classify.SigSnapshot `json:"signatures,omitempty"`
	// WALSeq is the first WAL segment NOT covered by this snapshot:
	// recovery replays only segments >= WALSeq on top (see Checkpoint;
	// 0 for snapshots taken without a WAL).
	WALSeq uint64 `json:"wal_seq,omitempty"`
}

// Snapshot serializes the source state (DTD set, extended-DTD statistics,
// repository, trigger rules) to JSON, so a long-lived service can
// checkpoint and resume.
func (s *Source) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked(0)
}

// snapshotLocked marshals the state with the given WAL position. Callers
// hold s.mu (read side suffices). Snapshot bytes are compared across
// primary/replica pairs and across recover-checkpoint cycles, so the
// encoder must be byte-deterministic.
// dtdvet:requires mu:r
// dtdvet:replayroot
func (s *Source) snapshotLocked(walSeq uint64) ([]byte, error) {
	snap := snapshot{
		Version:    snapshotVersion,
		DTDs:       make(map[string]string),
		Roots:      make(map[string]string),
		Docs:       make(map[string]int),
		Evolutions: make(map[string]int),
		Recorders:  make(map[string]*record.Snapshot),
		Added:      s.added,
		Symbols:    s.tab.Names(),
		WALSeq:     walSeq,
	}
	// Iterate in sorted-name order, not map order: the per-entry calls
	// (record snapshots, signature snapshots) must run in the same order on
	// every node so any state they touch — and any future non-map field
	// derived from them — keeps checkpoint bytes identical across
	// primary/replica pairs and recover-checkpoint cycles.
	for _, name := range s.names() {
		e := s.entries[name]
		snap.DTDs[name] = e.d.String()
		snap.Roots[name] = e.d.Name
		snap.Docs[name] = e.docs
		snap.Evolutions[name] = e.evolutions
		snap.Recorders[name] = e.rec.Snapshot()
		if sig := s.classifier.SigSnapshot(name); sig != nil {
			if snap.Signatures == nil {
				snap.Signatures = make(map[string]*classify.SigSnapshot)
			}
			snap.Signatures[name] = sig
		}
	}
	for _, doc := range s.repository {
		snap.Repository = append(snap.Repository, doc.String())
	}
	for _, r := range s.triggers {
		snap.Triggers = append(snap.Triggers, r.String())
	}
	return json.Marshal(snap)
}

// Restore rebuilds a Source from a Snapshot produced with the same Config.
// dtdvet:allow locks -- builds a fresh Source not yet shared with any goroutine
func Restore(cfg Config, data []byte) (*Source, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("source: decoding snapshot: %w", err)
	}
	s := New(cfg)
	if snap.Version >= 2 && len(snap.Symbols) > 0 {
		// Re-intern the saved symbols first, in their original ID order
		// (InternAll assigns dense IDs in slice order on a fresh table), so
		// the signatures' interned label IDs resolve to the same names.
		s.tab.InternAll(snap.Symbols)
	}
	// Restore DTDs in sorted-name order, not map order: building a
	// recorder or classifier entry interns labels into the shared symbol
	// table, and for pre-v2 snapshots (no saved Symbols slice) the
	// iteration order IS the ID assignment order. Two restores of the same
	// snapshot must produce identical tables, or their next checkpoints —
	// which a follower compares byte-for-byte — diverge.
	names := make([]string, 0, len(snap.DTDs))
	for name := range snap.DTDs { // dtdvet:allow replaydet -- keys sorted below before any state is touched
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src := snap.DTDs[name]
		d, err := dtd.ParseString(src)
		if err != nil {
			return nil, fmt.Errorf("source: snapshot DTD %q: %w", name, err)
		}
		d.Name = snap.Roots[name]
		e := &entry{d: d, rec: record.NewWithTable(d, s.tab), docs: snap.Docs[name], evolutions: snap.Evolutions[name]}
		if rs := snap.Recorders[name]; rs != nil {
			e.rec.Restore(rs)
		}
		s.entries[name] = e
		// Prefer the persisted signature; any mismatch (old codec, changed
		// config, stale table) falls back to the full rebuild.
		if sig := snap.Signatures[name]; sig == nil || !s.classifier.SetFromSnapshot(name, d, sig) {
			s.classifier.Set(name, d)
		}
	}
	for _, src := range snap.Repository {
		doc, err := xmltree.ParseString(src)
		if err != nil {
			return nil, fmt.Errorf("source: snapshot repository document: %w", err)
		}
		s.repository = append(s.repository, doc)
	}
	for _, src := range snap.Triggers {
		rule, err := trigger.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("source: snapshot trigger rule: %w", err)
		}
		s.triggers = append(s.triggers, rule)
	}
	s.added = snap.Added
	return s, nil
}

// dtdParse parses journaled DTD text and restores its declared root.
func dtdParse(text, root string) (*dtd.DTD, error) {
	d, err := dtd.ParseString(text)
	if err != nil {
		return nil, err
	}
	d.Name = root
	return d, nil
}
