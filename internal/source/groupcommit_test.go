package source

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

// maybeEnableGroupCommit turns group commit on when the environment asks
// for it — CI runs the fault-injection suite with DTDEVOLVE_GROUP_COMMIT
// both unset and set, so every durability test exercises both commit
// pipelines.
func maybeEnableGroupCommit(s *Source) {
	if os.Getenv("DTDEVOLVE_GROUP_COMMIT") != "" {
		s.EnableGroupCommit(GroupCommitOptions{})
	}
}

// TestGroupCommitMatchesSerialAdds checks a group-committed source is
// observably identical to the plain write-lock path over the same
// document sequence, evolutions included.
func TestGroupCommitMatchesSerialAdds(t *testing.T) {
	shapes := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>t</title><author>a</author><body>b</body></article>`,
		`<invoice><total>3</total></invoice>`,
		`<article><title>u</title><author>a</author><body>c</body></article>`,
	}
	var srcs []string
	for i := 0; i < 20; i++ {
		srcs = append(srcs, shapes[i%len(shapes)])
	}
	serial, grouped := New(testConfig()), New(testConfig())
	grouped.EnableGroupCommit(GroupCommitOptions{})
	serial.AddDTD("article", articleDTD())
	grouped.AddDTD("article", articleDTD())

	for i, src := range srcs {
		a := serial.Add(parseDoc(t, src))
		b := grouped.Add(parseDoc(t, src))
		if a.Classified != b.Classified || a.DTDName != b.DTDName ||
			a.Similarity != b.Similarity || a.Evolved != b.Evolved {
			t.Errorf("doc %d: serial %+v, grouped %+v", i, a, b)
		}
	}
	if got, want := snapshotOf(t, grouped), snapshotOf(t, serial); !reflect.DeepEqual(got, want) {
		t.Errorf("group-committed state diverges:\n got: %v\nwant: %v", got, want)
	}
}

// TestGroupCommitBatchSingleFsync pins the whole point of the feature: a
// batch committed through the group queue journals as one WAL batch and
// costs one fsync under SyncAlways, not one per document.
func TestGroupCommitBatchSingleFsync(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testConfig())
	s.EnableGroupCommit(GroupCommitOptions{})
	s.AttachWAL(w)
	s.AddDTD("article", articleDTD())

	const n = 10
	srcs := make([]string, n)
	for i := range srcs {
		srcs[i] = `<article><title>t</title><body>b</body></article>`
	}
	syncs0 := w.Stats().Syncs
	s.AddBatch(parseDocs(t, srcs))
	if got := w.Stats().Syncs - syncs0; got != 1 {
		t.Errorf("syncs for a %d-document group = %d, want 1", n, got)
	}
	m := s.Metrics()
	if m.WALGroups != 1 || m.WALGroupSizeMin != n || m.WALGroupSizeMax != n || m.WALGroupSizeMean != n {
		t.Errorf("group metrics = groups %d min %d mean %v max %d, want one group of %d",
			m.WALGroups, m.WALGroupSizeMin, m.WALGroupSizeMean, m.WALGroupSizeMax, n)
	}
	if m.FsyncsPerDoc >= 0.25 {
		t.Errorf("fsyncs_per_doc = %v, want < 0.25", m.FsyncsPerDoc)
	}
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// The journaled group replays like any serial history.
	recovered, info, err := Recover(testConfig(), nil, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.CloseWAL()
	if info.Replayed != n+1 { // dtd + documents
		t.Errorf("replayed %d records, want %d", info.Replayed, n+1)
	}
	if got, want := snapshotOf(t, recovered), snapshotOf(t, s); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state diverges:\n got: %v\nwant: %v", got, want)
	}
}

// TestGroupCommitMaxGroupSplitsBatches checks the leader honors MaxGroup:
// an oversized batch commits as multiple bounded WAL groups.
func TestGroupCommitMaxGroupSplitsBatches(t *testing.T) {
	s := New(testConfig())
	s.EnableGroupCommit(GroupCommitOptions{MaxGroup: 4})
	s.AddDTD("article", articleDTD())
	srcs := make([]string, 10)
	for i := range srcs {
		srcs[i] = `<article><title>t</title><body>b</body></article>`
	}
	res := s.AddBatch(parseDocs(t, srcs))
	if len(res) != len(srcs) {
		t.Fatalf("got %d results, want %d", len(res), len(srcs))
	}
	m := s.Metrics()
	if m.WALGroups != 3 || m.WALGroupSizeMax != 4 || m.WALGroupSizeMin != 2 {
		t.Errorf("groups = %d (min %d max %d), want 3 groups of 4+4+2",
			m.WALGroups, m.WALGroupSizeMin, m.WALGroupSizeMax)
	}
}

// TestKillAtEveryOffsetGroupCommit is the crash-mid-group durability
// property: cut the byte stream a group-committed source produced at every
// record boundary (and densely in between), recover, and check the state
// equals a serial reference run of exactly the journaled prefix — a torn
// group never applies partially-recovered state beyond its durable records.
func TestKillAtEveryOffsetGroupCommit(t *testing.T) {
	shapes := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>t</title><author>a</author><body>b</body></article>`,
		`<invoice><total>3</total></invoice>`,
		`<article><title>u</title><author>a</author><body>c</body></article>`,
	}
	var srcs []string
	for i := 0; i < 14; i++ {
		srcs = append(srcs, shapes[i%len(shapes)])
	}
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	live := New(testConfig())
	live.EnableGroupCommit(GroupCommitOptions{})
	live.AttachWAL(w)
	live.AddDTD("article", articleDTD())
	// Two batches → two multi-record AppendBatch groups (and a segment
	// rotation between them), journaled in batch order.
	live.AddBatch(parseDocs(t, srcs[:8]))
	live.AddBatch(parseDocs(t, srcs[8:]))
	if err := live.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Reference snapshots after each journaled record prefix, derived from
	// the stream itself: the dtd op, then the documents in enqueue (= batch)
	// order with auto-evolution decisions interleaved where they fired.
	refs := journalPrefixRefs(t, testConfig(), dir)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	var stream []byte
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, data...)
	}

	stride := 7
	if testing.Short() {
		stride = 97
	}
	offsets := map[int]bool{0: true, len(stream): true}
	for cut := 1; cut < len(stream); cut += stride {
		offsets[cut] = true
	}
	boundary := 0
	if _, err := wal.Replay(dir, func(p []byte) error {
		boundary += 8 + len(p)
		offsets[boundary] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for cut := range offsets {
		sub := t.TempDir()
		remaining := cut
		for _, p := range segs {
			if remaining <= 0 {
				break
			}
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) > remaining {
				data = data[:remaining]
			}
			remaining -= len(data)
			if err := os.WriteFile(filepath.Join(sub, filepath.Base(p)), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		recovered, info, err := Recover(testConfig(), nil, sub, wal.Options{Sync: wal.SyncOff})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		got := snapshotOf(t, recovered)
		recovered.CloseWAL()
		if info.Replayed >= len(refs) {
			t.Fatalf("cut %d: replayed %d > %d journaled ops", cut, info.Replayed, len(refs)-1)
		}
		if want := refs[info.Replayed]; !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d (replayed %d): crash inside a group diverged from the journaled prefix\n got: %v\nwant: %v",
				cut, info.Replayed, got, want)
		}
	}
}

// TestGroupCommitConcurrentAddSyncAlways is the -race stress of the
// leader/follower protocol: 16 writers under SyncAlways, every Add a
// separate transaction, concurrent readers and DTD churn. Afterwards the
// counters must balance and the journal must replay deterministically.
func TestGroupCommitConcurrentAddSyncAlways(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Sigma = 0.6
	s := New(cfg)
	s.EnableGroupCommit(GroupCommitOptions{})
	s.AttachWAL(w)
	s.AddDTD("article", articleDTD())

	const (
		writers   = 16
		perWriter = 8
	)
	shapes := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>t</title><author>a</author><body>b</body></article>`,
		`<article><title>t</title><ref/><ref/><body>b</body></article>`,
		`<alien><x/><y/></alien>`,
	}
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Add(parseDoc(t, shapes[(g+i)%len(shapes)]))
			}
		}(g)
	}
	wg.Add(1)
	go func() { // readers race the leader hand-offs
		defer wg.Done()
		for i := 0; i < 40; i++ {
			s.Metrics()
			s.Status()
			s.RepositorySize()
		}
	}()
	wg.Wait()

	m := s.Metrics()
	if m.Added != writers*perWriter {
		t.Errorf("metrics.Added = %d, want %d", m.Added, writers*perWriter)
	}
	if m.Classified+m.Repository != m.Added {
		t.Errorf("counters unbalanced: %d + %d != %d", m.Classified, m.Repository, m.Added)
	}
	if m.WALGroups == 0 || m.WALGroupSizeMax < 1 {
		t.Errorf("no groups observed: %+v", m)
	}
	if s.Degraded() != nil {
		t.Fatalf("degraded: %v", s.Degraded())
	}
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// WAL order is commit order: replay must reproduce the final state.
	recovered, info, err := Recover(cfg, nil, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.CloseWAL()
	counts := journalOpCounts(t, dir)
	if counts["doc"] != writers*perWriter || counts["dtd"] != 1 {
		t.Errorf("journal holds %d doc + %d dtd records, want %d + 1",
			counts["doc"], counts["dtd"], writers*perWriter)
	}
	if want := journalRecordCount(t, dir); info.Replayed != want {
		t.Errorf("replayed %d, want all %d journaled records", info.Replayed, want)
	}
	if got, want := snapshotOf(t, recovered), snapshotOf(t, s); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state diverges from group-committed run:\n got: %v\nwant: %v", got, want)
	}
}

// TestAddBatchScoringBounded asserts the batch scoring fan-out uses a
// bounded worker pool: a 512-document batch must not spawn hundreds of
// goroutines.
func TestAddBatchScoringBounded(t *testing.T) {
	s := New(DefaultConfig())
	s.AddDTD("article", articleDTD())
	docs := make([]*xmltree.Document, 512)
	for i := range docs {
		docs[i] = parseDoc(t, `<article><title>t</title><author>a</author><ref/><ref/><body>b</body></article>`)
	}
	before := runtime.NumGoroutine()
	resCh := make(chan []AddResult, 1)
	go func() { resCh <- s.AddBatch(docs) }()
	peak := before
	for {
		select {
		case res := <-resCh:
			if len(res) != len(docs) {
				t.Fatalf("got %d results, want %d", len(res), len(docs))
			}
			// One DTD registered, so classification spawns no per-DTD
			// goroutines: the pool itself is the only fan-out.
			if limit := before + runtime.GOMAXPROCS(0) + 8; peak > limit {
				t.Errorf("peak goroutines %d (baseline %d), want <= %d: batch fan-out is unbounded", peak, before, limit)
			}
			return
		default:
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			runtime.Gosched()
		}
	}
}
