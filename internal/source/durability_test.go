package source

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dtdevolve/internal/wal"
	"dtdevolve/internal/wal/faultfs"
	"dtdevolve/internal/xmltree"
)

// testConfig is a config that evolves quickly, for short op sequences.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MinDocs = 5
	return cfg
}

// op drives one source mutation; the same script runs against the
// journaled source and the reference source.
type op struct {
	kind string // "dtd", "doc", "trigger", "evolve", "reclassify"
	text string
}

var durabilityScript = []op{
	{"dtd", "article"},
	{"doc", `<article><title>t</title><body>b</body></article>`},
	{"doc", `<article><title>t</title><author>a</author><body>b</body></article>`},
	{"trigger", "on article when docs >= 4 and check_ratio > 0.1 do evolve"},
	{"doc", `<invoice><total>3</total></invoice>`},
	{"doc", `<article><title>u</title><author>a</author><body>c</body></article>`},
	{"doc", `<article><title>v</title><author>a</author><body>d</body></article>`},
	{"doc", `<article><title>w</title><author>a</author><body>e</body></article>`},
	{"evolve", "article"},
	{"doc", `<article><title>x</title><author>a</author><body>f</body></article>`},
	{"reclassify", ""},
	{"doc", `<alien><x/><y/></alien>`},
}

func runScript(t *testing.T, s *Source, script []op) {
	t.Helper()
	for i, o := range script {
		switch o.kind {
		case "dtd":
			s.AddDTD(o.text, articleDTD())
		case "doc":
			s.Add(parseDoc(t, o.text))
		case "trigger":
			if err := s.AddTriggerRule(o.text); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		case "evolve":
			if _, _, err := s.EvolveNow(o.text); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		case "reclassify":
			s.ReclassifyRepository()
		default:
			t.Fatalf("op %d: unknown kind %q", i, o.kind)
		}
	}
}

// snapshotOf unmarshals a snapshot for deep comparison, zeroing the WAL
// position (a recovered source checkpoints at a different offset than a
// never-persisted reference).
func snapshotOf(t *testing.T, s *Source) map[string]any {
	t.Helper()
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return decodeSnapshot(t, data)
}

func decodeSnapshot(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "wal_seq")
	return m
}

// journalOpCounts decodes dir's journaled stream and tallies records by
// operation.
func journalOpCounts(t *testing.T, dir string) map[string]int {
	t.Helper()
	counts := map[string]int{}
	if _, err := wal.Replay(dir, func(p []byte) error {
		var o walOp
		if err := json.Unmarshal(p, &o); err != nil {
			return err
		}
		counts[o.Op]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return counts
}

func journalRecordCount(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	for _, c := range journalOpCounts(t, dir) {
		n += c
	}
	return n
}

// journalPrefixRefs derives reference snapshots from the journaled stream
// itself: refs[i] is the state after applying the first i records through
// a replica-mode source. Auto-evolution decisions journal as their own
// records, so record prefixes — not script-op prefixes — are the
// crash-equivalence points.
func journalPrefixRefs(t *testing.T, cfg Config, dir string) []map[string]any {
	t.Helper()
	ref := New(cfg)
	ref.SetReplica(true)
	refs := []map[string]any{snapshotOf(t, ref)}
	if _, err := wal.Replay(dir, func(p []byte) error {
		if err := ref.ApplyWALRecord(p); err != nil {
			return err
		}
		refs = append(refs, snapshotOf(t, ref))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return refs
}

// TestRecoverFromWALOnly runs a script against a journaled source, "kills"
// it (never closing gracefully beyond the log flush), recovers from the WAL
// alone, and checks the recovered state equals the reference run.
func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	live := New(testConfig())
	maybeEnableGroupCommit(live)
	live.AttachWAL(w)
	runScript(t, live, durabilityScript)
	if err := live.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	recovered, info, err := Recover(testConfig(), nil, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.CloseWAL()
	// The journal holds one record per script op plus one per journaled
	// auto-evolution decision; the stream itself is the authority.
	records := journalRecordCount(t, dir)
	if records < len(durabilityScript) {
		t.Errorf("journal holds %d records, want >= %d (one per script op)", records, len(durabilityScript))
	}
	if info.SnapshotRestored || info.Replayed != records || info.Truncated || info.Corrupted {
		t.Errorf("info = %+v, want %d replayed clean records", info, records)
	}
	if got, want := snapshotOf(t, recovered), snapshotOf(t, live); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state diverges:\n got: %v\nwant: %v", got, want)
	}
	if got, want := recovered.TriggerRules(), live.TriggerRules(); !reflect.DeepEqual(got, want) {
		t.Errorf("trigger rules = %v, want %v", got, want)
	}
}

// TestCheckpointThenTailReplay checkpoints mid-script, continues mutating,
// crashes, and recovers from snapshot + WAL tail. The WAL history covered
// by the checkpoint must be truncated, and replay must apply only the tail.
func TestCheckpointThenTailReplay(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(t.TempDir(), "checkpoint.json")
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	live := New(testConfig())
	maybeEnableGroupCommit(live)
	live.AttachWAL(w)

	cut := 7
	runScript(t, live, durabilityScript[:cut])
	if err := live.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	runScript(t, live, durabilityScript[cut:])
	if err := live.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	snapData, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	recovered, info, err := Recover(testConfig(), snapData, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.CloseWAL()
	if !info.SnapshotRestored {
		t.Error("snapshot not restored")
	}
	if want := len(durabilityScript) - cut; info.Replayed != want {
		t.Errorf("replayed %d operations, want %d (checkpoint-covered history must not re-apply)", info.Replayed, want)
	}
	if got, want := snapshotOf(t, recovered), snapshotOf(t, live); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state diverges:\n got: %v\nwant: %v", got, want)
	}
	if m := recovered.Metrics(); m.Added != 0 {
		// Ingest counters are process-local, not part of durable state;
		// only the replayed tail moves them.
		t.Logf("recovered metrics.Added = %d (tail only, informational)", m.Added)
	}
}

// TestRecoverCheckpointRecoverKeepsTail is the regression for the restart
// sequence checkpoint → process restart → mutate → process restart: the
// checkpoint removes every segment it covers, so the second process's WAL
// numbering must resume above the checkpoint's position — otherwise its
// records land in "covered" segment numbers and the third process silently
// drops them.
func TestRecoverCheckpointRecoverKeepsTail(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(t.TempDir(), "checkpoint.json")

	// Process 1: ingest, checkpoint (truncates all history), crash.
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	live := New(testConfig())
	live.AttachWAL(w)
	live.AddDTD("article", articleDTD())
	live.Add(parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	if err := live.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if err := live.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Process 2: recover, ingest one more document, crash.
	snap, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Recover(testConfig(), snap, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	s2.Add(parseDoc(t, `<article><title>u</title><body>c</body></article>`))
	if err := s2.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Process 3: the tail document must survive.
	s3, info, err := Recover(testConfig(), snap, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.CloseWAL()
	if info.Replayed != 1 {
		t.Errorf("replayed %d records, want the 1 post-checkpoint document", info.Replayed)
	}
	if got, want := snapshotOf(t, s3), snapshotOf(t, s2); !reflect.DeepEqual(got, want) {
		t.Errorf("state diverges after checkpoint+restart+mutate+restart:\n got: %v\nwant: %v", got, want)
	}
}

// TestKillAtEveryOffsetSourceState is the end-to-end durability property:
// cut the journaled byte stream at every offset, recover, and check the
// state equals a reference source that ran exactly the durable prefix of
// operations.
func TestKillAtEveryOffsetSourceState(t *testing.T) {
	// Small scripts keep the quadratic (offsets × replays) cost down.
	script := durabilityScript
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	live := New(testConfig())
	maybeEnableGroupCommit(live)
	live.AttachWAL(w)
	runScript(t, live, script)
	if err := live.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Reference snapshots after each journaled record prefix, derived from
	// the stream itself (auto-evolution decisions are records of their own).
	refs := journalPrefixRefs(t, testConfig(), dir)

	// The segment byte stream, in order.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	var stream []byte
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, data...)
	}

	// The WAL-level suite (internal/wal/fault_test.go) already cuts at every
	// single byte; here the per-cut cost includes a full source replay, so
	// sample offsets densely and always include every record boundary.
	stride := 7
	if testing.Short() {
		stride = 97
	}
	offsets := map[int]bool{0: true, len(stream): true}
	for cut := 1; cut < len(stream); cut += stride {
		offsets[cut] = true
	}
	// Always include every record boundary (the interesting equivalence
	// points) — compute from replay of the full stream.
	boundary := 0
	_, err = wal.Replay(dir, func(p []byte) error {
		boundary += 8 + len(p)
		offsets[boundary] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for cut := range offsets {
		sub := t.TempDir()
		remaining := cut
		for _, p := range segs {
			if remaining <= 0 {
				break
			}
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) > remaining {
				data = data[:remaining]
			}
			remaining -= len(data)
			if err := os.WriteFile(filepath.Join(sub, filepath.Base(p)), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		recovered, info, err := Recover(testConfig(), nil, sub, wal.Options{Sync: wal.SyncOff})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		got := snapshotOf(t, recovered)
		recovered.CloseWAL()
		if info.Replayed >= len(refs) {
			t.Fatalf("cut %d: replayed %d > %d journaled records", cut, info.Replayed, len(refs)-1)
		}
		if want := refs[info.Replayed]; !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d (replayed %d): recovered state != reference prefix state\n got: %v\nwant: %v",
				cut, info.Replayed, got, want)
		}
	}
}

// TestDegradedModeOnWALFailure checks that a dying disk flips the source to
// degraded (sticky) while in-memory serving continues.
func TestDegradedModeOnWALFailure(t *testing.T) {
	fs := faultfs.New()
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncOff, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testConfig())
	maybeEnableGroupCommit(s)
	s.AttachWAL(w)
	s.AddDTD("article", articleDTD())
	if err := s.Degraded(); err != nil {
		t.Fatalf("healthy source degraded: %v", err)
	}
	fs.FailWritesAfter(0)
	res := s.Add(parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	if !res.Classified {
		t.Error("in-memory ingest must keep working through the failed append")
	}
	if s.Degraded() == nil {
		t.Fatal("Degraded() = nil after WAL write failure")
	}
	fs.Heal()
	if s.Degraded() == nil {
		t.Error("degraded state must be sticky (a healed disk does not un-lose the dropped record)")
	}
	if m := s.Metrics(); m.WALErrors == 0 {
		t.Errorf("metrics.WALErrors = 0, want > 0")
	}
	s.CloseWAL()
}

// TestCrashDuringConcurrentAddBatch kills the WAL mid-append under
// concurrent batch ingest (run with -race), then recovers and checks the
// recovered state is exactly the reference replay of the durable prefix.
func TestCrashDuringConcurrentAddBatch(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 2048, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Sigma = 0.6
	s := New(cfg)
	maybeEnableGroupCommit(s)
	s.AttachWAL(w)
	s.AddDTD("article", articleDTD())

	shapes := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>t</title><author>a</author><body>b</body></article>`,
		`<article><title>t</title><ref/><ref/><body>b</body></article>`,
		`<alien><x/><y/></alien>`,
	}
	fs.FailWritesAfter(3000) // the disk dies partway through the stream
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < 6; b++ {
				docs := make([]*xmltree.Document, 5)
				for i := range docs {
					docs[i] = parseDoc(t, shapes[(g+b+i)%len(shapes)])
				}
				s.AddBatch(docs)
			}
		}(g)
	}
	wg.Wait()
	if s.Degraded() == nil {
		t.Fatal("source not degraded after mid-append crash")
	}
	s.CloseWAL()

	// Recover from the torn log: every durable record must replay, and the
	// recovered state must equal a serial re-run of those journaled ops.
	recovered, info, err := Recover(cfg, nil, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	defer recovered.CloseWAL()
	if !info.Truncated && !info.Corrupted {
		t.Errorf("crash signature not reported: %+v", info)
	}
	if info.Replayed == 0 {
		t.Error("nothing replayed; expected a durable prefix")
	}
	// The journaled commit order is the single source of truth: replaying
	// the recovered WAL into a second fresh source must reproduce the same
	// state (determinism of the logical log).
	again, info2, err := Recover(cfg, nil, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer again.CloseWAL()
	if info2.Replayed != info.Replayed {
		t.Errorf("second recovery replayed %d, want %d", info2.Replayed, info.Replayed)
	}
	if got, want := snapshotOf(t, again), snapshotOf(t, recovered); !reflect.DeepEqual(got, want) {
		t.Errorf("recovery is not deterministic:\n got: %v\nwant: %v", got, want)
	}
	counts := journalOpCounts(t, dir)
	m := recovered.Metrics()
	if m.Added != int64(counts["doc"]) {
		t.Errorf("recovered Added = %d, want the %d journaled documents", m.Added, counts["doc"])
	}
}

// TestAddBatchContextCancellation checks a cancelled context aborts the
// batch before the commit phase.
func TestAddBatchContextCancellation(t *testing.T) {
	s := New(testConfig())
	s.AddDTD("article", articleDTD())
	docs := parseDocs(t, []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>u</title><body>c</body></article>`,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.AddBatchContext(ctx, docs); err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if m := s.Metrics(); m.Added != 0 {
		t.Errorf("cancelled batch committed %d documents, want 0", m.Added)
	}
	// An un-cancelled context behaves exactly like AddBatch.
	res, err := s.AddBatchContext(context.Background(), docs)
	if err != nil || len(res) != 2 || !res[0].Classified {
		t.Errorf("live batch: %v %v", res, err)
	}
}

// TestCheckpointerBackground runs the background checkpointer against live
// ingest and checks checkpoints land and truncate history.
func TestCheckpointerBackground(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(t.TempDir(), "checkpoint.json")
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testConfig())
	maybeEnableGroupCommit(s)
	s.AttachWAL(w)
	s.AddDTD("article", articleDTD())
	stop := s.StartCheckpointer(ckpt, 5*time.Millisecond, func(err error) { t.Errorf("checkpoint: %v", err) })
	for i := 0; i < 40; i++ {
		s.Add(parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	}
	stop()
	stop() // idempotent
	if m := s.Metrics(); m.Checkpoints == 0 {
		t.Error("no checkpoints recorded")
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	s.CloseWAL()
	recovered, _, err := Recover(testConfig(), data, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.CloseWAL()
	if got, want := snapshotOf(t, recovered), snapshotOf(t, s); !reflect.DeepEqual(got, want) {
		t.Errorf("state after checkpointed recovery diverges:\n got: %v\nwant: %v", got, want)
	}
}
