package source

// Regression test for the classification fan-out: scoring used to spawn one
// goroutine per registered DTD per in-flight document, so a GOMAXPROCS-wide
// batch over an N-DTD registry could stand up workers×N goroutines at once.
// The classifier now scores candidates on a classifier-wide bounded pool,
// so the ceiling is the batch worker count plus the shared helper budget —
// independent of the registry size. Run with -race.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"dtdevolve/internal/gen"
	"dtdevolve/internal/xmltree"
)

func TestAddBatchManyDTDsGoroutineCeiling(t *testing.T) {
	s := New(DefaultConfig())
	g := gen.New(gen.DefaultConfig(7))
	const nDTDs = 300
	for i := 0; i < nDTDs; i++ {
		root := fmt.Sprintf("many%03d", i)
		if i%10 == 0 {
			// Every tenth DTD shares one root, so its documents have real
			// candidate competition and the scoring pool actually engages.
			root = "shared"
		}
		s.AddDTD(fmt.Sprintf("d%03d", i), g.RandomDTD(root, 6))
	}
	var docs []*xmltree.Document
	for i := 0; i < nDTDs; i += 37 {
		docs = append(docs, g.MutatedDocuments(s.DTD(fmt.Sprintf("d%03d", i)), 16, 2, 0.5)...)
	}
	for len(docs) < 256 {
		docs = append(docs, docs[len(docs)%128])
	}

	procs := runtime.GOMAXPROCS(0)
	before := runtime.NumGoroutine()
	resCh := make(chan []AddResult, 1)
	go func() { resCh <- s.AddBatch(docs) }()
	peak := before
	// Batch workers (≤ GOMAXPROCS) plus the classifier's shared helper
	// budget (≤ GOMAXPROCS) plus slack for the runtime and test harness.
	// Before the bounded pool this would reach workers × nDTDs.
	limit := before + 2*procs + 8
	ticker := time.NewTicker(100 * time.Microsecond)
	defer ticker.Stop()
	for {
		select {
		case res := <-resCh:
			if len(res) != len(docs) {
				t.Fatalf("got %d results, want %d", len(res), len(docs))
			}
			if peak > limit {
				t.Errorf("peak goroutines %d (baseline %d, %d DTDs), want <= %d: per-DTD fan-out is unbounded",
					peak, before, nDTDs, limit)
			}
			return
		case <-ticker.C:
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		}
	}
}
