// Crash-safe durability for the source lifecycle (DESIGN.md §10).
//
// The paper's scenario is a long-lived document source whose extended-DTD
// statistics accumulate over an unbounded stream; losing them resets the
// evolution process. A Source therefore journals every state-changing
// operation to a write-ahead log before the snapshot-at-shutdown path ever
// runs: recovery restores the latest checkpoint and replays the WAL tail.
//
// The journal is a *logical command log*: each record is the operation
// (document XML, DTD text, trigger source, forced evolution), not a state
// delta. Replaying the operations through the normal code paths, in commit
// order, reproduces the exact state: the write lock serializes commits, so
// WAL order is state order, and the check phase's own decisions
// (auto-evolutions, trigger firings) are journaled as records of their own
// the moment they fire, so replay — and a follower replica tailing the log
// mid-stream (internal/replicate) — applies the recorded decision instead
// of re-deriving it.
package source

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

// walOp is one journaled operation. Op selects the variant; the other
// fields carry its arguments.
type walOp struct {
	// Op is the operation: "doc" (document ingested), "sdoc" (document
	// ingested through the streaming path with a child budget in force),
	// "dtd" (DTD registered), "triggers" (rule set replaced), "trigger"
	// (rule appended), "evolve" (forced evolution), "reclassify" (forced
	// repository re-classification), "autoevolve" (check phase or trigger
	// rule fired an evolution), "autoreclassify" (trigger rule fired a
	// repository re-classification).
	Op string `json:"op"`
	// Name is the DTD name for "dtd", "evolve" and "autoevolve".
	Name string `json:"name,omitempty"`
	// Root is the DTD's declared root element for "dtd".
	Root string `json:"root,omitempty"`
	// Text is the operation body: document XML, DTD text, or trigger rule
	// source.
	Text string `json:"text,omitempty"`
	// MaxChildren is the per-element child budget in force for "sdoc" — a
	// streamed document that degraded under it. Replay re-streams with the
	// same budget so the degraded statistics land bit-identically.
	MaxChildren int `json:"max_children,omitempty"`
}

// journalLocked appends one operation to the attached WAL. Callers hold the
// write lock, so the append order is exactly the commit order. A failed
// append marks the source degraded (sticky): the in-memory state the caller
// is about to produce stays consistent with what the client is told, but
// the serving layer must stop accepting mutations (Degraded, HTTP 503)
// because their durability can no longer be promised.
// dtdvet:requires mu
// dtdvet:journalpoint
// dtdvet:replayroot
func (s *Source) journalLocked(op walOp) {
	if s.replaying || s.walErr != nil {
		return
	}
	sink := s.journalSink
	if s.wal == nil && sink == nil {
		return
	}
	payload, err := json.Marshal(op)
	if err != nil {
		// Marshalling a walOp (strings only) cannot fail; treat it as a
		// degraded log all the same rather than dropping the record.
		s.walErr = fmt.Errorf("source: encoding WAL record: %w", err)
		s.metrics.ObserveWALError()
		return
	}
	if sink != nil {
		// A group commit is in flight: collect the record for the group's
		// single batched append (journalBatchLocked) instead of writing it
		// now, preserving its position between the doc that caused it and
		// the next doc of the group.
		*sink = append(*sink, payload)
		return
	}
	if err := s.wal.Append(payload); err != nil {
		s.walErr = err
		s.metrics.ObserveWALError()
	}
}

// journalBatchLocked appends a whole commit group's pre-serialized
// payloads as one WAL batch, in queue order, which is commit order because
// the caller holds the write lock across the append and every apply. The
// fsync is NOT taken here: under SyncAlways the returned log is non-nil
// and the caller must call its Flush after releasing the write lock (and
// before acknowledging the group), so the disk round-trip overlaps the
// next group's scoring and draining instead of stalling every reader
// behind a writer-held lock. A write failure matches journalLocked: the
// source turns degraded (sticky) and the group still applies in memory.
// dtdvet:requires mu
// dtdvet:journalpoint
// dtdvet:replayroot
func (s *Source) journalBatchLocked(payloads [][]byte) (flush *wal.Log) {
	if s.wal == nil || s.replaying || s.walErr != nil || len(payloads) == 0 {
		return nil
	}
	if err := s.wal.AppendBatchNoSync(payloads); err != nil {
		s.walErr = err
		s.metrics.ObserveWALError()
		return nil
	}
	if s.wal.Policy() == wal.SyncAlways {
		return s.wal
	}
	return nil
}

// encodeOpLocked marshals an operation for journaling, marking the source
// degraded on the (string-only ops: impossible) encode failure, exactly as
// journalLocked would.
// dtdvet:requires mu
func (s *Source) encodeOpLocked(op walOp) []byte {
	payload, err := json.Marshal(op)
	if err != nil {
		s.walErr = fmt.Errorf("source: encoding WAL record: %w", err)
		s.metrics.ObserveWALError()
		return nil
	}
	return payload
}

// AttachWAL journals every subsequent state-changing operation to w. The
// log should be positioned after any replayed history (see Recover, which
// wires this up); attaching a log that still holds unreplayed records of
// another source would double-apply them on the next recovery.
// dtdvet:nojournal -- attaching the log is itself not a replayable operation
func (s *Source) AttachWAL(w *wal.Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = w
	s.walErr = nil
}

// WAL returns the attached write-ahead log, or nil.
func (s *Source) WAL() *wal.Log {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal
}

// CloseWAL detaches and closes the write-ahead log (flushing its tail).
// dtdvet:nojournal -- detaching the log is itself not a replayable operation
func (s *Source) CloseWAL() error {
	s.mu.Lock()
	w := s.wal
	s.wal = nil
	s.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

// Degraded returns the sticky durability failure, or nil while every
// journaled operation is reaching the log. A degraded source still serves
// reads and still mutates in memory when asked directly, but the serving
// layer refuses mutating requests (503) so no client is promised a
// durability the log can no longer provide.
func (s *Source) Degraded() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.walErr != nil {
		return s.walErr
	}
	if s.wal != nil {
		return s.wal.Err()
	}
	return nil
}

// applyOp replays one journaled operation through the normal code paths.
func (s *Source) applyOp(op walOp) error {
	switch op.Op {
	case "doc":
		doc, err := xmltree.ParseString(op.Text)
		if err != nil {
			return fmt.Errorf("source: WAL document: %w", err)
		}
		s.Add(doc)
	case "sdoc":
		if err := s.applyStreamOp(op); err != nil {
			return err
		}
	case "dtd":
		d, err := dtdParse(op.Text, op.Root)
		if err != nil {
			return fmt.Errorf("source: WAL DTD %q: %w", op.Name, err)
		}
		s.AddDTD(op.Name, d)
	case "triggers":
		if err := s.SetTriggerRules(op.Text); err != nil {
			return fmt.Errorf("source: WAL trigger rules: %w", err)
		}
	case "trigger":
		if err := s.AddTriggerRule(op.Text); err != nil {
			return fmt.Errorf("source: WAL trigger rule: %w", err)
		}
	case "evolve":
		if _, _, err := s.EvolveNow(op.Name); err != nil {
			return fmt.Errorf("source: WAL evolve: %w", err)
		}
	case "reclassify":
		s.ReclassifyRepository()
	case "autoevolve":
		// A check-phase or trigger-fired evolution the primary recorded;
		// apply the decision rather than re-deriving it (the check phase is
		// suppressed while replaying).
		if _, _, err := s.EvolveNow(op.Name); err != nil {
			return fmt.Errorf("source: WAL auto-evolve: %w", err)
		}
	case "autoreclassify":
		s.ReclassifyRepository()
	default:
		return fmt.Errorf("source: unknown WAL operation %q", op.Op)
	}
	return nil
}

// RecoveryInfo describes what Recover rebuilt the source from.
type RecoveryInfo struct {
	// SnapshotRestored reports that a checkpoint was restored (rather than
	// starting empty).
	SnapshotRestored bool
	// Replayed is the number of WAL operations applied on top.
	Replayed int
	// Truncated reports a torn final record was truncated away (the normal
	// signature of a crash mid-append).
	Truncated bool
	// Corrupted reports CRC-detected corruption; the invalid suffix was
	// quarantined, never applied, and the recovered state is the longest
	// valid prefix.
	Corrupted bool
	// Quarantined lists the quarantine files recovery produced.
	Quarantined []string
}

// walPosition extracts the WAL segment position a snapshot covers (0 for
// pre-WAL snapshots: replay everything).
func walPosition(snapshotData []byte) uint64 {
	var pos struct {
		WALSeq uint64 `json:"wal_seq"`
	}
	_ = json.Unmarshal(snapshotData, &pos)
	return pos.WALSeq
}

// Recover rebuilds a Source from an optional snapshot (nil: start empty)
// plus the write-ahead log at walDir, then opens the log for appending and
// attaches it, so the recovered source is immediately durable again.
// Recovery is total over crash damage: a torn tail is truncated, corrupt
// suffixes are quarantined, and the state equals the reference state at the
// last durable record.
// dtdvet:replayroot
func Recover(cfg Config, snapshotData []byte, walDir string, opts wal.Options) (*Source, RecoveryInfo, error) {
	var info RecoveryInfo
	var s *Source
	var minSeq uint64
	if len(snapshotData) > 0 {
		restored, err := Restore(cfg, snapshotData)
		if err != nil {
			return nil, info, err
		}
		s = restored
		minSeq = walPosition(snapshotData)
		info.SnapshotRestored = true
	} else {
		s = New(cfg)
	}

	s.mu.Lock()
	s.replaying = true
	s.mu.Unlock()
	res, err := wal.ReplayFrom(walDir, minSeq, func(payload []byte) error {
		var op walOp
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("source: decoding WAL record: %w", err)
		}
		return s.applyOp(op)
	})
	s.mu.Lock()
	s.replaying = false
	s.mu.Unlock()
	info.Replayed = res.Records
	info.Truncated = res.Truncated
	info.Corrupted = res.Corrupted
	info.Quarantined = res.Quarantined
	if err != nil {
		return nil, info, err
	}

	w, err := wal.Open(walDir, opts)
	if err != nil {
		return nil, info, err
	}
	// The checkpoint may have removed every segment it covers; keep new
	// segment numbers above its position so the next recovery replays them.
	w.SkipTo(minSeq)
	s.AttachWAL(w)
	return s, info, nil
}

// Checkpoint atomically writes a snapshot of the current state to path
// (temp file + fsync + rename) and truncates the WAL history the snapshot
// covers. The snapshot and the WAL position are taken under one write-lock
// section, so the pair is exact: every operation in the snapshot is in a
// truncated segment, every operation after it is in a kept one — a crash at
// any point between the two steps recovers correctly (ReplayFrom skips
// segments the restored snapshot covers).
//
// dtdvet:nojournal -- checkpointing changes no logical state; its only
// guarded write is the sticky walErr degraded marker
func (s *Source) Checkpoint(path string) error {
	s.mu.Lock()
	var keep uint64
	if s.wal != nil {
		seq, err := s.wal.Rotate()
		if err != nil {
			s.walErr = err
			s.metrics.ObserveWALError()
			s.mu.Unlock()
			return err
		}
		keep = seq
	}
	data, err := s.snapshotLocked(keep)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(path, data); err != nil {
		return err
	}
	s.mu.RLock()
	w := s.wal
	retain := s.retain
	gcLogf := s.gcLogf
	s.mu.RUnlock()
	if w != nil {
		// Leftover sealed segments are skipped at recovery via the
		// snapshot's WAL position, so a failed removal costs disk, not
		// correctness — but a silently filling disk is an outage in the
		// making, so failures are counted (wal_gc_errors) and the first per
		// checkpoint is logged. The retention floor pins segments a
		// replication follower has not acknowledged (SetWALRetention).
		floor := keep
		if retain != nil {
			if f := retain(); f < floor {
				floor = f
			}
		}
		if err := w.RemoveBefore(floor); err != nil {
			s.metrics.ObserveWALGCError()
			if gcLogf != nil {
				gcLogf(err)
			}
		}
	}
	s.metrics.ObserveCheckpoint()
	return nil
}

// WriteFileAtomic writes data to path via a temp file, fsync and rename, so
// a crash leaves either the old or the new file — never a torn one. The
// rename is made durable by fsyncing the containing directory.
func WriteFileAtomic(path string, data []byte) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	closed := false
	defer func() {
		if !closed {
			_ = tmp.Close() // dtdvet:allow errsync -- error path: Write/Sync already failed and is being returned
		}
		if err != nil {
			os.Remove(tmpPath)
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	closed = true
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmpPath, path); err != nil {
		return err
	}
	// Make the rename itself durable. A checkpoint whose directory entry
	// could still vanish in a crash must not report success: recovery would
	// then replay from a WAL position the on-disk snapshot does not cover.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("source: opening checkpoint directory: %w", err)
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("source: syncing checkpoint directory: %w", err)
	}
	return nil
}

// StartCheckpointer runs Checkpoint(path) every interval on a background
// goroutine until the returned stop function is called (which runs one
// final checkpoint before returning). onErr, when non-nil, observes
// checkpoint failures; the checkpointer keeps trying.
//
// The first checkpoint fires after interval plus a random phase in
// [0, interval): a checkpoint is a snapshot serialization plus an fsync
// burst, and co-located sources started together (N shards of one router,
// a fleet restart) would otherwise storm the disk on every shared tick.
// Callers that want a specific phase use StartCheckpointerDelayed.
func (s *Source) StartCheckpointer(path string, interval time.Duration, onErr func(error)) (stop func()) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return s.StartCheckpointerDelayed(path, interval, rand.N(interval), onErr)
}

// StartCheckpointerDelayed is StartCheckpointer with an explicit phase:
// the first tick fires after phase+interval, subsequent ones every
// interval. A router staggers its shards' phases deterministically at
// i/N of the interval so their checkpoint fsyncs interleave.
func (s *Source) StartCheckpointerDelayed(path string, interval, phase time.Duration, onErr func(error)) (stop func()) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if phase > 0 {
			t := time.NewTimer(phase)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return
			}
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := s.Checkpoint(path); err != nil && onErr != nil {
					onErr(err)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			if err := s.Checkpoint(path); err != nil && onErr != nil {
				onErr(err)
			}
		})
	}
}
