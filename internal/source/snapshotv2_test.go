package source

import (
	"encoding/json"
	"testing"
)

// TestSnapshotV2Shape checks the checkpoint codec carries the symbol table
// and the per-DTD classification signatures (DESIGN.md §12): recovery must
// not pay the signature rebuild that scales with registry size.
func TestSnapshotV2Shape(t *testing.T) {
	s := New(testConfig())
	s.AddDTD("article", articleDTD())
	s.Add(parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Version    int                        `json:"version"`
		Symbols    []string                   `json:"symbols"`
		Signatures map[string]json.RawMessage `json:"signatures"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 {
		t.Errorf("version = %d, want 2", snap.Version)
	}
	if len(snap.Symbols) == 0 {
		t.Error("no symbols persisted")
	}
	if _, ok := snap.Signatures["article"]; !ok {
		t.Errorf("signatures = %v, want an entry for article", snap.Signatures)
	}
}

// TestRestoreRoundTripKeepsSymbolsAndSignatures checks restore → snapshot
// is a fixpoint: the restored source must serialize byte-equal state
// (symbols in the same ID order, signatures identical), which is what the
// durability suite's DeepEqual comparisons rely on.
func TestRestoreRoundTripKeepsSymbolsAndSignatures(t *testing.T) {
	s := New(testConfig())
	runScript(t, s, durabilityScript)
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(testConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if gm, wm := decodeSnapshot(t, got), decodeSnapshot(t, data); !deepEqualJSON(gm, wm) {
		t.Errorf("restore round trip diverges:\n got: %v\nwant: %v", gm, wm)
	}
}

// TestRestoreV1SnapshotFallsBackToRebuild feeds Restore a pre-v2 snapshot
// (no version, no symbols, no signatures — exactly what an old checkpoint
// file holds) and checks the classifier is rebuilt from scratch and
// classifies identically.
func TestRestoreV1SnapshotFallsBackToRebuild(t *testing.T) {
	s := New(testConfig())
	runScript(t, s, durabilityScript)
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "version")
	delete(m, "symbols")
	delete(m, "signatures")
	v1, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(testConfig(), v1)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	probes := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<invoice><total>3</total></invoice>`,
	}
	for _, p := range probes {
		got := restored.Add(parseDoc(t, p))
		want := s.Add(parseDoc(t, p))
		if got.Classified != want.Classified || got.DTDName != want.DTDName || got.Similarity != want.Similarity {
			t.Errorf("probe %s:\n v1-restored: %+v\n original:    %+v", p, got, want)
		}
	}
	if got, want := restored.RepositorySize(), s.RepositorySize(); got != want {
		t.Errorf("repository size = %d, want %d", got, want)
	}
}

// deepEqualJSON compares two decoded JSON values.
func deepEqualJSON(a, b map[string]any) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return string(ab) == string(bb)
}
