package source

import (
	"fmt"
	"sync"
	"testing"

	"dtdevolve/internal/adapt"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

func articleDTD() *dtd.DTD {
	d := dtd.MustParse(`
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	d.Name = "article"
	return d
}

func TestAddClassifiesAndRecords(t *testing.T) {
	s := New(DefaultConfig())
	s.AddDTD("article", articleDTD())
	res := s.Add(parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	if !res.Classified || res.DTDName != "article" || res.Similarity != 1 {
		t.Fatalf("res = %+v", res)
	}
	st := s.Status()
	if len(st) != 1 || st[0].Docs != 1 {
		t.Errorf("status = %+v", st)
	}
}

func TestAddUnclassifiedGoesToRepository(t *testing.T) {
	s := New(DefaultConfig())
	s.AddDTD("article", articleDTD())
	res := s.Add(parseDoc(t, `<invoice><total>3</total></invoice>`))
	if res.Classified {
		t.Fatalf("res = %+v, want unclassified", res)
	}
	if s.RepositorySize() != 1 {
		t.Errorf("repository = %d, want 1", s.RepositorySize())
	}
}

// TestLifecycleEvolution reproduces the paper's scenario end to end: the
// document population drifts (every article gains an author element), the
// check phase notices once enough documents accumulated, the DTD evolves,
// and subsequent drifted documents are plainly valid.
func TestLifecycleEvolution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinDocs = 10
	s := New(cfg)
	s.AddDTD("article", articleDTD())

	drifted := `<article><title>t</title><author>a</author><body>b</body></article>`
	evolvedAt := -1
	for i := 0; i < 30; i++ {
		res := s.Add(parseDoc(t, drifted))
		if !res.Classified {
			t.Fatalf("doc %d went unclassified (similarity %v)", i, res.Similarity)
		}
		if res.Evolved {
			evolvedAt = i
			break
		}
	}
	if evolvedAt < 0 {
		t.Fatal("evolution never triggered")
	}
	// The evolved DTD accepts the drifted shape.
	d := s.DTD("article")
	v := validate.New(d)
	if vs := v.ValidateDocument(parseDoc(t, drifted)); len(vs) != 0 {
		t.Errorf("drifted doc still invalid after evolution: %v\n%s", vs, d)
	}
	if d.Elements["author"] == nil {
		t.Errorf("author not declared:\n%s", d)
	}
	// Status reflects the evolution and the recorder reset.
	st := s.Status()
	if st[0].Evolutions != 1 {
		t.Errorf("evolutions = %d, want 1", st[0].Evolutions)
	}
	if st[0].Docs != 0 {
		t.Errorf("docs after evolution = %d, want 0", st[0].Docs)
	}
}

func TestRepositoryRecoveryAfterEvolution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sigma = 0.6 // heavily drifted docs fall below this
	cfg.MinDocs = 10
	s := New(cfg)
	s.AddDTD("article", articleDTD())

	// Heavily drifted documents: six novel refs push similarity below σ.
	far := `<article><title>t</title><ref/><ref/><ref/><ref/><ref/><ref/><body>b</body></article>`
	for i := 0; i < 5; i++ {
		if res := s.Add(parseDoc(t, far)); res.Classified {
			t.Fatalf("far doc unexpectedly classified (sim %v)", res.Similarity)
		}
	}
	if s.RepositorySize() != 5 {
		t.Fatalf("repository = %d, want 5", s.RepositorySize())
	}
	// Mildly drifted documents accumulate and drive an evolution toward a
	// ref-bearing shape that also covers the repository documents.
	mild := `<article><title>t</title><ref/><ref/><body>b</body></article>`
	for i := 0; i < 15; i++ {
		s.Add(parseDoc(t, mild))
	}
	// Force the evolution for determinism.
	if _, _, err := s.EvolveNow("article"); err != nil {
		t.Fatal(err)
	}
	if s.RepositorySize() != 0 {
		t.Errorf("repository after evolution = %d, want 0 (recovered)", s.RepositorySize())
	}
}

func TestEvolveNowUnknownName(t *testing.T) {
	s := New(DefaultConfig())
	if _, _, err := s.EvolveNow("nope"); err == nil {
		t.Fatal("expected error for unknown DTD")
	}
}

func TestNeedsEvolution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoEvolve = false
	cfg.MinDocs = 5
	s := New(cfg)
	s.AddDTD("article", articleDTD())
	drifted := `<article><title>t</title><author>a</author><body>b</body></article>`
	for i := 0; i < 4; i++ {
		s.Add(parseDoc(t, drifted))
	}
	if names := s.NeedsEvolution(); len(names) != 0 {
		t.Errorf("needs evolution below MinDocs: %v", names)
	}
	s.Add(parseDoc(t, drifted))
	if names := s.NeedsEvolution(); len(names) != 1 || names[0] != "article" {
		t.Errorf("needs evolution = %v, want [article]", names)
	}
	// Manual evolution clears the flag.
	if _, _, err := s.EvolveNow("article"); err != nil {
		t.Fatal(err)
	}
	if names := s.NeedsEvolution(); len(names) != 0 {
		t.Errorf("needs evolution after evolving: %v", names)
	}
}

func TestMultipleDTDsRouteDocuments(t *testing.T) {
	s := New(DefaultConfig())
	s.AddDTD("article", articleDTD())
	catalog := dtd.MustParse(`
<!ELEMENT catalog (product*)>
<!ELEMENT product (name)>
<!ELEMENT name (#PCDATA)>`)
	catalog.Name = "catalog"
	s.AddDTD("catalog", catalog)

	a := s.Add(parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	c := s.Add(parseDoc(t, `<catalog><product><name>n</name></product></catalog>`))
	if a.DTDName != "article" || c.DTDName != "catalog" {
		t.Errorf("routing = %q, %q", a.DTDName, c.DTDName)
	}
}

func TestConcurrentAdds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinDocs = 25
	s := New(cfg)
	s.AddDTD("article", articleDTD())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				src := fmt.Sprintf(`<article><title>t%d</title><author>a</author><body>b</body></article>`, i)
				doc, err := xmltree.ParseString(src)
				if err != nil {
					t.Error(err)
					return
				}
				s.Add(doc)
			}
		}(g)
	}
	wg.Wait()
	st := s.Status()
	if st[0].Evolutions == 0 {
		t.Error("no evolution under concurrent load")
	}
}

func TestSnapshotRestore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinDocs = 1000 // no auto evolution during the test
	s := New(cfg)
	s.AddDTD("article", articleDTD())
	drifted := `<article><title>t</title><author>a</author><body>b</body></article>`
	for i := 0; i < 8; i++ {
		s.Add(parseDoc(t, drifted))
	}
	s.Add(parseDoc(t, `<alien><x/></alien>`)) // repository
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.RepositorySize() != 1 {
		t.Errorf("restored repository = %d, want 1", restored.RepositorySize())
	}
	st, st2 := s.Status(), restored.Status()
	if len(st2) != 1 || st2[0].Docs != st[0].Docs || st2[0].CheckRatio != st[0].CheckRatio {
		t.Errorf("restored status = %+v, want %+v", st2, st)
	}
	// The restored recorder still drives an equivalent evolution.
	r1, _, err := restored.EvolveNow("article")
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := s.EvolveNow("article")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Changes) != len(r2.Changes) {
		t.Errorf("restored evolution differs: %d vs %d changes", len(r1.Changes), len(r2.Changes))
	}
	if !restored.DTD("article").Equal(s.DTD("article")) {
		t.Errorf("restored evolution produced a different DTD:\n%s\nvs\n%s",
			restored.DTD("article"), s.DTD("article"))
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(DefaultConfig(), []byte("{not json")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := Restore(DefaultConfig(), []byte(`{"dtds":{"x":"<!ELEMENT broken"}}`)); err == nil {
		t.Fatal("snapshot with broken DTD accepted")
	}
}

func TestTriggerRulesDriveEvolution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoEvolve = false // triggers replace the built-in policy
	s := New(cfg)
	s.AddDTD("article", articleDTD())
	if err := s.AddTriggerRule("on article when check_ratio > 0.2 and docs >= 8 do evolve"); err != nil {
		t.Fatal(err)
	}
	drifted := `<article><title>t</title><author>a</author><body>b</body></article>`
	fired := false
	firedAt := 0
	for i := 0; i < 20 && !fired; i++ {
		res := s.Add(parseDoc(t, drifted))
		if len(res.Triggered) > 0 {
			fired = true
			firedAt = i + 1
			if !res.Evolved {
				t.Error("trigger fired but no evolution")
			}
		}
	}
	if !fired {
		t.Fatal("trigger never fired")
	}
	if firedAt < 8 {
		t.Errorf("fired at doc %d, before the docs >= 8 condition", firedAt)
	}
	if s.DTD("article").Elements["author"] == nil {
		t.Error("evolved DTD lacks author")
	}
}

func TestTriggerInvalidityCondition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoEvolve = false
	s := New(cfg)
	s.AddDTD("article", articleDTD())
	if err := s.AddTriggerRule("on * when invalidity(article) >= 1 and docs >= 3 do evolve"); err != nil {
		t.Fatal(err)
	}
	drifted := `<article><title>t</title><author>a</author><body>b</body></article>`
	var fired bool
	for i := 0; i < 5; i++ {
		if res := s.Add(parseDoc(t, drifted)); len(res.Triggered) > 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("invalidity trigger never fired")
	}
}

func TestTriggerRuleManagement(t *testing.T) {
	s := New(DefaultConfig())
	if err := s.AddTriggerRule("on broken"); err == nil {
		t.Error("bad rule accepted")
	}
	if err := s.SetTriggerRules("on a when docs > 1 do evolve\non * when repository > 3 do reclassify"); err != nil {
		t.Fatal(err)
	}
	if got := s.TriggerRules(); len(got) != 2 {
		t.Errorf("rules = %v", got)
	}
	if err := s.SetTriggerRules("on broken"); err == nil {
		t.Error("bad rule list accepted")
	}
}

func TestStoreAndAdaptStored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinDocs = 8
	s := New(cfg)
	s.AddDTD("article", articleDTD())
	if err := s.EnableStore(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer s.CloseStore()

	// Era 1: old-style documents are stored as classified.
	old := `<article><title>t</title><body>b</body></article>`
	for i := 0; i < 5; i++ {
		s.Add(parseDoc(t, old))
	}
	// Era 2: drifted documents trigger an evolution toward the new shape.
	drifted := `<article><title>t</title><author>a</author><body>b</body></article>`
	evolved := false
	for i := 0; i < 20 && !evolved; i++ {
		evolved = s.Add(parseDoc(t, drifted)).Evolved
	}
	if !evolved {
		t.Fatal("no evolution")
	}
	stored := s.StoredDocs("article")
	if len(stored) < 6 {
		t.Fatalf("stored = %d", len(stored))
	}
	// If the evolved DTD requires the new shape, old stored documents can
	// be adapted to it; either way AdaptStored must leave every stored
	// document valid.
	opts := adapt.DefaultOptions()
	opts.PlaceholderText = "unknown"
	if _, err := s.AdaptStored("article", opts); err != nil {
		t.Fatal(err)
	}
	v := validate.New(s.DTD("article"))
	for i, doc := range s.StoredDocs("article") {
		if vs := v.ValidateDocument(doc); len(vs) != 0 {
			t.Errorf("stored doc %d invalid after AdaptStored: %v\n%s", i, vs, doc.Root.Indent())
		}
	}
}

func TestAdaptStoredErrors(t *testing.T) {
	s := New(DefaultConfig())
	s.AddDTD("article", articleDTD())
	if _, err := s.AdaptStored("article", adapt.DefaultOptions()); err == nil {
		t.Error("AdaptStored without a store should fail")
	}
	if err := s.EnableStore(""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdaptStored("nope", adapt.DefaultOptions()); err == nil {
		t.Error("AdaptStored of unknown DTD should fail")
	}
}
