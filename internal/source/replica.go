// Replica-facing surface of a Source (DESIGN.md §14).
//
// A follower replica (internal/replicate) holds a Source per shard that is
// permanently in replay mode: every state change arrives as a shipped WAL
// record and is applied through the same logical-command paths recovery
// uses, never re-journaled and never re-derived. The primary side exposes
// two small hooks — a retention floor so checkpoint-time WAL truncation
// keeps history followers have not acknowledged, and a GC error logger.

package source

import (
	"encoding/json"
	"fmt"
)

// SetReplica switches the source in or out of replica mode. In replica
// mode journaling is suppressed and the check phase does not re-derive
// evolutions: state changes are expected to arrive exclusively as shipped
// WAL records (ApplyWALRecord), exactly as during recovery replay.
// Promotion clears the mode (and attaches a fresh WAL) to make the replica
// a writable primary.
// dtdvet:nojournal -- mode flips are not replayable operations
func (s *Source) SetReplica(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replaying = on
}

// Replica reports whether the source is in replica mode.
func (s *Source) Replica() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replaying
}

// ApplyWALRecord decodes one journaled operation payload (a WAL frame's
// payload, as shipped from the primary) and applies it through the normal
// code paths. The source must be in replica (or recovery) mode so the
// operation is not re-journaled; applying records in shipped order on a
// state built from the primary's checkpoint reproduces the primary's state
// exactly.
// dtdvet:replayroot
func (s *Source) ApplyWALRecord(payload []byte) error {
	var op walOp
	if err := json.Unmarshal(payload, &op); err != nil {
		return fmt.Errorf("source: decoding WAL record: %w", err)
	}
	return s.applyOp(op)
}

// SnapshotAt serializes the state like Snapshot but stamps it with the
// given WAL position: walSeq is the first segment NOT covered by the
// snapshot. A follower checkpoints locally at segment boundaries — after
// fully applying segment K its state is exactly "everything before K+1",
// the same invariant Checkpoint establishes on the primary — so the file
// it writes is a valid recovery (and promotion) point.
func (s *Source) SnapshotAt(walSeq uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked(walSeq)
}

// SnapshotWALPosition extracts the WAL segment position a snapshot covers:
// the first segment whose records are NOT folded into it (0 for pre-WAL
// snapshots — replay everything). A follower bootstrapping from a shipped
// checkpoint resumes its tail here.
func SnapshotWALPosition(snapshotData []byte) uint64 {
	return walPosition(snapshotData)
}

// SetWALRetention installs (or, with nil, removes) a retention floor
// consulted by Checkpoint before truncating covered WAL history: segments
// at or above the returned sequence number are kept even when the snapshot
// covers them. The replication primary uses it to pin segments its
// followers have not yet acknowledged, so GC can never outrun shipping.
// dtdvet:nojournal -- retention wiring is not a replayable operation
func (s *Source) SetWALRetention(floor func() uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retain = floor
}

// SetWALGCLogger installs (or, with nil, removes) the observer for
// checkpoint-time WAL truncation failures. At most one error is reported
// per checkpoint (the removal pass returns its first failure); the
// wal_gc_errors metric counts them regardless.
// dtdvet:nojournal -- logger wiring is not a replayable operation
func (s *Source) SetWALGCLogger(logf func(error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLogf = logf
}
