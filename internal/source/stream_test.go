package source

// Tests for the streaming ingest path: AddStream must be observably
// equivalent to Add(parse(r)) — same results, same snapshot bytes, same
// journal bytes — and a degraded streamed document must replay to
// bit-identical state through its journaled "sdoc" budget.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

func feedDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseFile(filepath.Join("..", "..", "testdata", "feeds", "feed.dtd"))
	if err != nil {
		t.Fatal(err)
	}
	d.Name = "feed"
	return d
}

func playDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseFile(filepath.Join("..", "..", "testdata", "plays", "play.dtd"))
	if err != nil {
		t.Fatal(err)
	}
	d.Name = "play"
	return d
}

func corpusRaw(t *testing.T) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*", "*.xml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("globbing corpus: %v (%d)", err, len(paths))
	}
	sort.Strings(paths)
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = raw
	}
	return out
}

func mustSnapshot(t *testing.T, s *Source) string {
	t.Helper()
	b, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// walBytes concatenates every WAL segment in dir, in sequence order.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	var all []byte
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

// TestAddStreamMatchesAdd pins AddStream ≡ Add over the corpus: identical
// per-document results and identical snapshot bytes (recorder statistics,
// repository contents, counters).
func TestAddStreamMatchesAdd(t *testing.T) {
	mk := func() *Source {
		s := New(DefaultConfig())
		s.cfg.AutoEvolve = false
		s.AddDTD("feed", feedDTD(t))
		s.AddDTD("play", playDTD(t))
		return s
	}
	tree, streamed := mk(), mk()
	for path, raw := range corpusRaw(t) {
		doc, err := xmltree.ParseString(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		want := tree.Add(doc)
		got, err := streamed.AddStream(bytes.NewReader(raw))
		if err != nil {
			// Bounded mode keeps no spool: unclassified documents cannot
			// reach the repository. Mirror by checking the tree result.
			if errors.Is(err, ErrStreamRepository) && !want.Classified {
				continue
			}
			t.Fatalf("%s: AddStream: %v", path, err)
		}
		if got.DTDName != want.DTDName || got.Similarity != want.Similarity || got.Classified != want.Classified {
			t.Errorf("%s: stream (%q, %v, %v) != tree (%q, %v, %v)", path,
				got.DTDName, got.Similarity, got.Classified,
				want.DTDName, want.Similarity, want.Classified)
		}
	}
	// The corpus classifies fully, so no repository divergence is tolerated
	// in the snapshot comparison.
	if a, b := mustSnapshot(t, tree), mustSnapshot(t, streamed); a != b {
		t.Errorf("snapshot bytes diverge\ntree:   %s\nstream: %s", a, b)
	}
	ts, ss := tree.Metrics(), streamed.Metrics()
	if ts.Added != ss.Added || ts.Classified != ss.Classified {
		t.Errorf("metrics diverge: tree %+v stream %+v", ts, ss)
	}
	if ss.StreamDocs == 0 || ss.StreamBytes == 0 {
		t.Errorf("stream metrics not counted: %+v", ss)
	}
	if ts.StreamDocs != 0 {
		t.Errorf("tree path counted stream docs: %+v", ts)
	}
}

// TestAddStreamJournalBytes pins the raw-byte passthrough: a source fed
// via AddStream writes a WAL byte-identical to one fed the same documents
// via Add.
func TestAddStreamJournalBytes(t *testing.T) {
	mk := func(dir string) *Source {
		s := New(DefaultConfig())
		s.cfg.AutoEvolve = false
		w, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.AttachWAL(w)
		s.AddDTD("feed", feedDTD(t))
		s.AddDTD("play", playDTD(t))
		return s
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	tree, streamed := mk(dirA), mk(dirB)
	for path, raw := range corpusRaw(t) {
		doc, err := xmltree.ParseString(string(raw))
		if err != nil {
			t.Fatal(err)
		}
		tree.Add(doc)
		if _, err := streamed.AddStream(bytes.NewReader(raw)); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	if err := tree.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if err := streamed.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	a, b := walBytes(t, dirA), walBytes(t, dirB)
	if !bytes.Equal(a, b) {
		t.Errorf("WAL bytes diverge: tree %d bytes, stream %d bytes", len(a), len(b))
	}
}

// TestAddStreamDegradedReplay checks the "sdoc" record: a document that
// degrades under MaxChildren journals its budget, and recovery replays it
// through the streaming path to bit-identical state.
func TestAddStreamDegradedReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.AutoEvolve = false
	cfg.Sigma = 0.1
	cfg.MaxChildren = 4
	s := New(cfg)
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachWAL(w)
	d, err := dtd.ParseString(`<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	d.Name = "r"
	s.AddDTD("r", d)

	raw := "<r>" + strings.Repeat("<a/>", 6) + "<b/></r>"
	res, err := s.AddStream(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Classified {
		t.Fatalf("wide doc not classified: %+v", res)
	}
	live := mustSnapshot(t, s)
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	recovered, info, err := Recover(cfg, nil, dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 2 { // "dtd" + "sdoc"
		t.Errorf("replayed %d records, want 2", info.Replayed)
	}
	if got := mustSnapshot(t, recovered); got != live {
		t.Errorf("replayed state diverges\nlive:     %s\nreplayed: %s", live, got)
	}

	// Sanity: the degraded record must NOT equal what the tree path would
	// have recorded (otherwise "sdoc" is pointless here).
	treeSrc := New(cfg)
	treeSrc.AddDTD("r", d.Clone())
	doc, err := xmltree.ParseString(raw)
	if err != nil {
		t.Fatal(err)
	}
	treeSrc.Add(doc)
	if mustSnapshot(t, treeSrc) == live {
		t.Errorf("degraded stream state equals tree state; budget had no effect")
	}
}

// TestAddStreamBoundedErrors checks the bounded-mode refusals: oversize
// input is rejected with SizeError (and counted), an unclassifiable
// document without a spool returns ErrStreamRepository.
func TestAddStreamBoundedErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDocBytes = 64
	s := New(cfg)
	s.AddDTD("feed", feedDTD(t))

	big := "<feed>" + strings.Repeat("<entry/>", 100) + "</feed>"
	_, err := s.AddStream(strings.NewReader(big))
	var se *xmltree.SizeError
	if !errors.As(err, &se) || se.Limit != 64 {
		t.Fatalf("want SizeError{64}, got %v", err)
	}
	if m := s.Metrics(); m.StreamRejectedOversize != 1 {
		t.Errorf("rejected-oversize counter: %+v", m)
	}

	if _, err := s.AddStream(strings.NewReader(`<nope/>`)); !errors.Is(err, ErrStreamRepository) {
		t.Fatalf("want ErrStreamRepository, got %v", err)
	}
	if s.RepositorySize() != 0 {
		t.Errorf("repository grew in bounded mode")
	}
	if got := s.Metrics().Added; got != 0 {
		t.Errorf("refused documents counted as added: %d", got)
	}
}

// TestAddStreamGatedWinnerFallback drives the degenerate σ ≤ 0 corner: the
// fold crowns a root-gated DTD at similarity 0, whose lane was never
// recorded, and the source must fall back to the spooled tree path — still
// equivalent to Add.
func TestAddStreamGatedWinnerFallback(t *testing.T) {
	mk := func() *Source {
		cfg := DefaultConfig()
		cfg.Sigma = 0
		cfg.AutoEvolve = false
		s := New(cfg)
		if err := s.EnableStore(""); err != nil {
			t.Fatal(err)
		}
		s.AddDTD("feed", feedDTD(t))
		return s
	}
	tree, streamed := mk(), mk()
	raw := `<nosuchroot><x/></nosuchroot>`
	doc, err := xmltree.ParseString(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := tree.Add(doc)
	got, err := streamed.AddStream(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.DTDName != want.DTDName || got.Similarity != want.Similarity || got.Classified != want.Classified {
		t.Errorf("stream %+v != tree %+v", got, want)
	}
	if a, b := mustSnapshot(t, tree), mustSnapshot(t, streamed); a != b {
		t.Errorf("snapshot bytes diverge after gated-winner fallback")
	}
}

// TestAddStreamStoreRaw checks the docstore passthrough: a streamed
// classified document lands in the store byte-identical to the tree path.
func TestAddStreamStoreRaw(t *testing.T) {
	mk := func() *Source {
		cfg := DefaultConfig()
		cfg.AutoEvolve = false
		s := New(cfg)
		if err := s.EnableStore(""); err != nil {
			t.Fatal(err)
		}
		s.AddDTD("feed", feedDTD(t))
		s.AddDTD("play", playDTD(t))
		return s
	}
	tree, streamed := mk(), mk()
	for path, raw := range corpusRaw(t) {
		doc, err := xmltree.ParseString(string(raw))
		if err != nil {
			t.Fatal(err)
		}
		tree.Add(doc)
		if _, err := streamed.AddStream(bytes.NewReader(raw)); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	for _, name := range tree.Names() {
		a, b := tree.StoredDocs(name), streamed.StoredDocs(name)
		if len(a) != len(b) {
			t.Fatalf("%s: stored %d vs %d docs", name, len(a), len(b))
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Errorf("%s[%d]: stored bytes diverge", name, i)
			}
		}
	}
}
